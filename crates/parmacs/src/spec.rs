//! Memory-ordering specifications for the lock-free constructs.
//!
//! Every atomic operation the Splash-4 back-ends perform is named here, with
//! the `std::sync::atomic::Ordering` it uses. The real primitives
//! ([`crate::queue::TreiberStack`], [`crate::barrier::SenseBarrier`],
//! [`crate::reduce::AtomicF64`], [`crate::flag::AtomicFlag`],
//! [`crate::counter::AtomicCounter`], [`crate::queue::TicketDispenser`]) read
//! their orderings from these constants instead of hard-coding them, and the
//! `splash4-check` model checker drives *shadow* re-implementations of the
//! same state machines from the same spec structs. That closes the loop: if a
//! future edit weakens an ordering here, the checker's race detector fails on
//! the next `V1-check` run; if a checker mutation test overrides a field
//! (e.g. `pop_load: Relaxed`), it is exploring exactly the state machine the
//! real construct would execute with that ordering.
//!
//! The structs are plain `Copy` data so a checker scenario can take a spec,
//! tweak one field, and hand it to a shadow construct.
//!
//! Not every ordering downgrade surfaces as a data race: weakening a
//! `SeqCst` fence-pair to `Acquire`/`Release`, or an `Acquire` spin to
//! `Relaxed`, changes only which *values* a load on the atomic itself may
//! return — no plain data becomes unordered, so interleaving search over
//! sequentially consistent executions cannot tell the difference. The
//! checker's `W1-weakmem` experiment covers that blind spot: under its weak
//! memory model the engine also branches over the stale reads the shipped
//! orderings admit, so spec fields documented as "`SeqCst` because ..." or
//! "`Acquire` because ..." below are pinned by a second, value-level line
//! of defense.

use std::sync::atomic::Ordering;

/// Orderings used by the Treiber stack (`queue::TreiberStack`).
#[derive(Debug, Clone, Copy)]
pub struct TreiberSpec {
    /// Initial head load in `push` (the CAS validates it, so `Relaxed`).
    pub push_load: Ordering,
    /// Success ordering of the publishing CAS in `push`.
    pub push_cas_ok: Ordering,
    /// Failure ordering of the publishing CAS in `push`.
    pub push_cas_fail: Ordering,
    /// Initial head load in `pop`. Must be `Acquire`: the popped node's
    /// fields (`next`, `value`) are plain data published by the push CAS.
    pub pop_load: Ordering,
    /// Success ordering of the unlinking CAS in `pop`.
    pub pop_cas_ok: Ordering,
    /// Failure ordering of the unlinking CAS in `pop` (the reloaded head is
    /// dereferenced on the next iteration, so `Acquire`).
    pub pop_cas_fail: Ordering,
}

impl TreiberSpec {
    /// The orderings the Splash-4 stack ships with.
    pub const SPLASH4: TreiberSpec = TreiberSpec {
        push_load: Ordering::Relaxed,
        push_cas_ok: Ordering::AcqRel,
        push_cas_fail: Ordering::Acquire,
        pop_load: Ordering::Acquire,
        pop_cas_ok: Ordering::AcqRel,
        pop_cas_fail: Ordering::Acquire,
    };
}

/// Orderings used by the sense-reversing barrier (`barrier::SenseBarrier`).
#[derive(Debug, Clone, Copy)]
pub struct SenseBarrierSpec {
    /// Read of the generation before arriving.
    pub generation_load: Ordering,
    /// The arrival `fetch_add` on the central counter.
    pub arrive_rmw: Ordering,
    /// The winner's reset of the arrival counter.
    pub arrived_reset: Ordering,
    /// The winner's generation bump that releases the episode.
    pub generation_bump: Ordering,
    /// The waiters' spin load on the generation. Must be `Acquire` to pair
    /// with the bump: a `Relaxed` spin may observe the bump yet read
    /// pre-episode data — caught only by `W1-weakmem`'s stale-value search
    /// (`barrier-spin-relaxed`), not by interleaving-only exploration.
    pub spin_load: Ordering,
}

impl SenseBarrierSpec {
    /// The orderings the Splash-4 barrier ships with.
    pub const SPLASH4: SenseBarrierSpec = SenseBarrierSpec {
        generation_load: Ordering::Acquire,
        arrive_rmw: Ordering::AcqRel,
        arrived_reset: Ordering::Relaxed,
        generation_bump: Ordering::AcqRel,
        spin_load: Ordering::Acquire,
    };
}

/// Orderings used by the CAS-loop f64 cell (`reduce::AtomicF64`).
#[derive(Debug, Clone, Copy)]
pub struct CasF64Spec {
    /// Initial load of the bit pattern (the CAS validates it).
    pub load: Ordering,
    /// Success ordering of the update CAS.
    pub cas_ok: Ordering,
    /// Failure ordering of the update CAS.
    pub cas_fail: Ordering,
}

impl CasF64Spec {
    /// The orderings the Splash-4 reduction ships with.
    pub const SPLASH4: CasF64Spec = CasF64Spec {
        load: Ordering::Relaxed,
        cas_ok: Ordering::AcqRel,
        cas_fail: Ordering::Relaxed,
    };
}

/// Orderings used by the atomic pause variable (`flag::AtomicFlag`).
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// The producer's `set` store. Must be `Release`: data written before
    /// `set` must be visible to a waiter after `wait`. The `W1-weakmem`
    /// mutant `flag-set-relaxed` demonstrates the stale-payload window a
    /// `Relaxed` store opens.
    pub set_store: Ordering,
    /// The consumer's `wait`/`is_set` load. Must be `Acquire` to pair with
    /// `set_store` (`W1-weakmem` mutant `flag-wait-relaxed`).
    pub wait_load: Ordering,
}

impl FlagSpec {
    /// The orderings the Splash-4 flag ships with.
    pub const SPLASH4: FlagSpec = FlagSpec {
        set_store: Ordering::Release,
        wait_load: Ordering::Acquire,
    };
}

/// Orderings used by the `fetch_add` index counter (`counter::AtomicCounter`)
/// and the ticket dispenser (`queue::TicketDispenser`).
///
/// `Relaxed` is correct for the claim itself: each grabbed index is
/// independent and the task data is immutable and published before the team
/// starts (a barrier separates construction from distribution).
#[derive(Debug, Clone, Copy)]
pub struct TicketSpec {
    /// The claiming `fetch_add`.
    pub claim_rmw: Ordering,
    /// `reset`'s pre-read of the claim counter (quiescence check).
    pub reset_load: Ordering,
    /// `reset`'s swap back to zero.
    pub reset_swap: Ordering,
}

impl TicketSpec {
    /// The orderings the Splash-4 dispensers ship with.
    pub const SPLASH4: TicketSpec = TicketSpec {
        claim_rmw: Ordering::Relaxed,
        reset_load: Ordering::Acquire,
        reset_swap: Ordering::AcqRel,
    };
}

/// Orderings used by epoch-based reclamation (`splash4-reclaim`'s
/// `EpochReclaimer`).
///
/// The invariant the orderings protect: a thread that observed epoch `e`
/// while pinned can still hold references retired in `e` or `e - 1`, so a
/// retired node is only freed once the global epoch has advanced two steps
/// past its retirement epoch with every pinned thread having announced the
/// newer epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochSpec {
    /// A pinning thread's read of the global epoch. `SeqCst`: the
    /// announcement below must not appear to predate a concurrent advance.
    /// Downgrading it to `Acquire` opens a store-buffering window between
    /// the announcement and the collector's scan — no data race, invisible
    /// to SC interleaving search, caught by the `W1-weakmem` mutant
    /// `epoch-pin-load-acquire`.
    pub global_load: Ordering,
    /// The pin announcement store into the thread's epoch slot. `SeqCst`
    /// orders it against the collector's slot scan — with anything weaker
    /// the scan can miss a freshly pinned thread and free under it.
    pub announce_store: Ordering,
    /// The unpin store of the quiescent sentinel.
    pub quiesce_store: Ordering,
    /// The collector's scan load of each announcement slot. `SeqCst` for
    /// the same store-buffering reason as `global_load` (`W1-weakmem`
    /// mutant `epoch-scan-acquire`).
    pub scan_load: Ordering,
    /// The CAS that advances the global epoch.
    pub advance_cas_ok: Ordering,
    /// Failure ordering of the advance CAS (another collector advanced).
    pub advance_cas_fail: Ordering,
}

impl EpochSpec {
    /// The orderings the Splash-4 epoch reclaimer ships with.
    pub const SPLASH4: EpochSpec = EpochSpec {
        global_load: Ordering::SeqCst,
        announce_store: Ordering::SeqCst,
        quiesce_store: Ordering::Release,
        scan_load: Ordering::SeqCst,
        advance_cas_ok: Ordering::AcqRel,
        advance_cas_fail: Ordering::Acquire,
    };
}

/// Orderings used by hazard-pointer reclamation (`splash4-reclaim`'s
/// `HazardReclaimer`).
///
/// The publish/validate pair is the load-bearing half of Michael's protocol:
/// the hazard store must be globally visible before the pointer is re-read,
/// or a concurrent scan can miss the hazard and free the protected node.
#[derive(Debug, Clone, Copy)]
pub struct HazardSpec {
    /// The hazard publication store. `SeqCst` — see the struct docs.
    pub publish_store: Ordering,
    /// The re-read that validates the protected pointer is still reachable.
    /// `SeqCst`: an `Acquire` validate may be satisfied by a stale
    /// pre-retirement value, letting use and free overlap (`W1-weakmem`
    /// mutant `hazard-validate-acquire`).
    pub validate_load: Ordering,
    /// The hazard clear after the protected region ends.
    pub clear_store: Ordering,
    /// The reclaimer's scan load of every hazard slot.
    pub scan_load: Ordering,
}

impl HazardSpec {
    /// The orderings the Splash-4 hazard reclaimer ships with.
    pub const SPLASH4: HazardSpec = HazardSpec {
        publish_store: Ordering::SeqCst,
        validate_load: Ordering::SeqCst,
        clear_store: Ordering::Release,
        scan_load: Ordering::SeqCst,
    };
}

/// Orderings used by the Michael-Scott queue (`splash4-reclaim`'s
/// `MsQueue`).
#[derive(Debug, Clone, Copy)]
pub struct MsQueueSpec {
    /// Loads of `head`/`tail` at the top of each attempt. `Acquire`: the
    /// loaded node's `next` field and value cell are dereferenced.
    pub ptr_load: Ordering,
    /// Load of a node's `next` pointer.
    pub next_load: Ordering,
    /// The enqueue link CAS on `tail.next` — the linearization point of
    /// `push`; `AcqRel` publishes the new node's fields.
    pub link_cas_ok: Ordering,
    /// Failure ordering of the link CAS (the loaded `next` is chased).
    pub link_cas_fail: Ordering,
    /// The helping tail-swing CAS (both in push and pop). `Release` would
    /// suffice for correctness; `AcqRel` keeps the helping path symmetric.
    pub tail_swing_ok: Ordering,
    /// Failure ordering of the tail swing.
    pub tail_swing_fail: Ordering,
    /// The dequeue head CAS — the linearization point of `pop`.
    pub head_cas_ok: Ordering,
    /// Failure ordering of the head CAS.
    pub head_cas_fail: Ordering,
}

impl MsQueueSpec {
    /// The orderings the Splash-4 queue ships with.
    pub const SPLASH4: MsQueueSpec = MsQueueSpec {
        ptr_load: Ordering::Acquire,
        next_load: Ordering::Acquire,
        link_cas_ok: Ordering::AcqRel,
        link_cas_fail: Ordering::Acquire,
        tail_swing_ok: Ordering::AcqRel,
        tail_swing_fail: Ordering::Relaxed,
        head_cas_ok: Ordering::AcqRel,
        head_cas_fail: Ordering::Acquire,
    };
}

/// Orderings used by the elimination slot of the elimination-backoff stack
/// (`splash4-reclaim`'s `EliminationStack`; the base stack reuses
/// [`TreiberSpec`]).
#[derive(Debug, Clone, Copy)]
pub struct EliminationSpec {
    /// A popper's read of the exchange slot. `Acquire`: a successful take
    /// dereferences the offered node.
    pub slot_load: Ordering,
    /// The pusher's install CAS offering its node.
    pub install_cas_ok: Ordering,
    /// Failure ordering of the install CAS.
    pub install_cas_fail: Ordering,
    /// The pusher's withdraw CAS (slot back to empty). Failure means a
    /// popper took the node — the exchange linearizes there.
    pub withdraw_cas_ok: Ordering,
    /// Failure ordering of the withdraw CAS.
    pub withdraw_cas_fail: Ordering,
    /// The popper's take CAS claiming the offered node.
    pub take_cas_ok: Ordering,
    /// Failure ordering of the take CAS.
    pub take_cas_fail: Ordering,
}

impl EliminationSpec {
    /// The orderings the Splash-4 elimination stack ships with.
    pub const SPLASH4: EliminationSpec = EliminationSpec {
        slot_load: Ordering::Acquire,
        install_cas_ok: Ordering::AcqRel,
        install_cas_fail: Ordering::Acquire,
        withdraw_cas_ok: Ordering::AcqRel,
        withdraw_cas_fail: Ordering::Acquire,
        take_cas_ok: Ordering::AcqRel,
        take_cas_fail: Ordering::Acquire,
    };
}

/// Orderings used by the concurrent keyed map (`splash4-kernels`' `cmap`
/// workload): a Harris–Michael bucket list with mark-bit logical deletion
/// and epoch-protected traversal.
///
/// The load-bearing edges: the link CAS publishes the new node's plain
/// `key` field (so every pointer load that may dereference must acquire),
/// and the mark CAS must be `AcqRel` so an unlink that observes the mark
/// also observes everything the remover did before it.
#[derive(Debug, Clone, Copy)]
pub struct CMapSpec {
    /// Load of a bucket head at the top of a traversal. `Acquire`: the
    /// loaded node's `key` and `next` fields are dereferenced.
    pub head_load: Ordering,
    /// Load of a node's `next` pointer while walking a bucket chain.
    pub next_load: Ordering,
    /// The insert link CAS (on the head or a predecessor's `next`) — the
    /// linearization point of `insert`; `AcqRel` publishes the node.
    pub link_cas_ok: Ordering,
    /// Failure ordering of the link CAS (the reloaded pointer is chased).
    pub link_cas_fail: Ordering,
    /// The logical-delete CAS that sets the mark bit on the victim's
    /// `next` — the linearization point of `remove`.
    pub mark_cas_ok: Ordering,
    /// Failure ordering of the mark CAS.
    pub mark_cas_fail: Ordering,
    /// The physical unlink CAS that snips a marked node out of the chain
    /// (performed by the remover or by any helping traversal).
    pub unlink_cas_ok: Ordering,
    /// Failure ordering of the unlink CAS.
    pub unlink_cas_fail: Ordering,
    /// Store of a live node's value cell on key update.
    pub value_store: Ordering,
    /// Load of a node's value cell on lookup.
    pub value_load: Ordering,
}

impl CMapSpec {
    /// The orderings the Splash-4 concurrent map ships with.
    pub const SPLASH4: CMapSpec = CMapSpec {
        head_load: Ordering::Acquire,
        next_load: Ordering::Acquire,
        link_cas_ok: Ordering::AcqRel,
        link_cas_fail: Ordering::Acquire,
        mark_cas_ok: Ordering::AcqRel,
        mark_cas_fail: Ordering::Acquire,
        unlink_cas_ok: Ordering::AcqRel,
        unlink_cas_fail: Ordering::Acquire,
        value_store: Ordering::Release,
        value_load: Ordering::Acquire,
    };
}

/// Orderings used by the bounded MPMC ring (`queue::BoundedMpmcQueue`) —
/// the lock-free stage queue of the `stream` pipeline workload and the
/// serve subsystem's job queue.
///
/// The slot sequence number doubles as the payload's publication fence:
/// [`RingSpec::publish_store`] must release the payload write and
/// [`RingSpec::seq_load`] must acquire it, or a consumer can read a slot
/// before the producer's value lands (and vice versa one lap later).
#[derive(Debug, Clone, Copy)]
pub struct RingSpec {
    /// Load of a slot's sequence number when probing it for this ticket.
    pub seq_load: Ordering,
    /// Load of the shared enqueue/dequeue cursor (the CAS validates it).
    pub cursor_load: Ordering,
    /// Success ordering of the cursor-claim CAS (slot ownership only; the
    /// seq handoff carries the payload, so `Relaxed`).
    pub cursor_cas_ok: Ordering,
    /// Failure ordering of the cursor-claim CAS.
    pub cursor_cas_fail: Ordering,
    /// The sequence-number store that publishes a filled (or recycled)
    /// slot to the other side.
    pub publish_store: Ordering,
}

impl RingSpec {
    /// The orderings the Splash-4 ring ships with.
    pub const SPLASH4: RingSpec = RingSpec {
        seq_load: Ordering::Acquire,
        cursor_load: Ordering::Relaxed,
        cursor_cas_ok: Ordering::Relaxed,
        cursor_cas_fail: Ordering::Relaxed,
        publish_store: Ordering::Release,
    };
}

/// Orderings used by the flat-combining core (`combining::CombiningCore`)
/// that backs the Splash-4x (`SyncMode::Combining`) counters, reductions,
/// dispensers and barrier arrival phase.
///
/// The protocol has two publication edges the orderings must keep intact:
///
/// 1. *Request publication*: a thread stores its argument into its record
///    (plain for the checker's race model, relaxed-atomic in the real core)
///    and then publishes the opcode with [`CombiningSpec::publish_store`];
///    the combiner's [`CombiningSpec::scan_load`] acquires it before reading
///    the argument. Weakening either side is the "lost publication record"
///    family of bugs.
/// 2. *Result handoff*: the combiner stores the result, then marks the
///    record complete with [`CombiningSpec::complete_store`]; the waiter's
///    [`CombiningSpec::wait_load`] acquires the completion before reading
///    the result. Weakening either side is the "stale result handoff"
///    family.
#[derive(Debug, Clone, Copy)]
pub struct CombiningSpec {
    /// Success ordering of the combiner-lock CAS. `Acquire`: the new
    /// combiner reads the protected state the previous combiner wrote.
    pub lock_cas_ok: Ordering,
    /// Failure ordering of the combiner-lock CAS (the loser just spins).
    pub lock_cas_fail: Ordering,
    /// Store of the request argument into the publication record (validated
    /// by the publish/scan edge, so `Relaxed`).
    pub arg_store: Ordering,
    /// The opcode store that publishes the record to the combiner.
    pub publish_store: Ordering,
    /// The combiner's scan load of each record's opcode.
    pub scan_load: Ordering,
    /// The combiner's store of the operation result into the record.
    pub result_store: Ordering,
    /// The combiner's completion store (opcode back to empty) that releases
    /// the result to the waiting thread.
    pub complete_store: Ordering,
    /// The waiter's spin load on its record's opcode.
    pub wait_load: Ordering,
    /// The waiter's read of the result after observing completion.
    pub result_load: Ordering,
    /// The combiner's release store of the combiner lock.
    pub lock_release: Ordering,
}

impl CombiningSpec {
    /// The orderings the Splash-4x combining core ships with.
    pub const SPLASH4X: CombiningSpec = CombiningSpec {
        lock_cas_ok: Ordering::Acquire,
        lock_cas_fail: Ordering::Relaxed,
        arg_store: Ordering::Relaxed,
        publish_store: Ordering::Release,
        scan_load: Ordering::Acquire,
        result_store: Ordering::Relaxed,
        complete_store: Ordering::Release,
        wait_load: Ordering::Acquire,
        result_load: Ordering::Relaxed,
        lock_release: Ordering::Release,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_combining_spec_keeps_both_publication_edges() {
        // Request publication: publish must release the argument write and
        // the scan must acquire it, or the combiner reads a half-built
        // record (the lost-publication mutant).
        assert_eq!(CombiningSpec::SPLASH4X.publish_store, Ordering::Release);
        assert_eq!(CombiningSpec::SPLASH4X.scan_load, Ordering::Acquire);
        // Result handoff: completion must release the result store and the
        // waiter must acquire it (the stale-result mutant).
        assert_eq!(CombiningSpec::SPLASH4X.complete_store, Ordering::Release);
        assert_eq!(CombiningSpec::SPLASH4X.wait_load, Ordering::Acquire);
        // Combiner handoff: state written by the previous combiner must be
        // visible to the next.
        assert_eq!(CombiningSpec::SPLASH4X.lock_cas_ok, Ordering::Acquire);
        assert_eq!(CombiningSpec::SPLASH4X.lock_release, Ordering::Release);
    }

    #[test]
    fn shipped_specs_have_safe_cas_orderings() {
        // compare_exchange requires failure ordering without Release and the
        // shipped specs must keep the publication edges strong enough for the
        // checker's race model: pop_load acquires, set_store releases.
        assert_eq!(TreiberSpec::SPLASH4.pop_load, Ordering::Acquire);
        assert_eq!(TreiberSpec::SPLASH4.pop_cas_fail, Ordering::Acquire);
        assert_eq!(FlagSpec::SPLASH4.set_store, Ordering::Release);
        assert_eq!(FlagSpec::SPLASH4.wait_load, Ordering::Acquire);
        assert_eq!(SenseBarrierSpec::SPLASH4.generation_bump, Ordering::AcqRel);
        assert_eq!(CasF64Spec::SPLASH4.cas_ok, Ordering::AcqRel);
    }

    #[test]
    fn shipped_reclaim_specs_keep_publication_and_scan_edges() {
        // The reclamation protocols are only safe with sequentially
        // consistent publish/scan pairs (Dekker-style visibility): a pin
        // announcement or hazard publication that can be reordered past the
        // protected load is exactly the premature-free mutant the checker
        // catches.
        assert_eq!(EpochSpec::SPLASH4.announce_store, Ordering::SeqCst);
        assert_eq!(EpochSpec::SPLASH4.scan_load, Ordering::SeqCst);
        assert_eq!(HazardSpec::SPLASH4.publish_store, Ordering::SeqCst);
        assert_eq!(HazardSpec::SPLASH4.validate_load, Ordering::SeqCst);
        assert_eq!(HazardSpec::SPLASH4.scan_load, Ordering::SeqCst);
        // Queue/stack nodes carry plain-data payloads: the linearizing CAS
        // must publish them and the pointer loads must acquire them.
        assert_eq!(MsQueueSpec::SPLASH4.link_cas_ok, Ordering::AcqRel);
        assert_eq!(MsQueueSpec::SPLASH4.ptr_load, Ordering::Acquire);
        assert_eq!(MsQueueSpec::SPLASH4.next_load, Ordering::Acquire);
        assert_eq!(EliminationSpec::SPLASH4.install_cas_ok, Ordering::AcqRel);
        assert_eq!(EliminationSpec::SPLASH4.take_cas_ok, Ordering::AcqRel);
    }

    #[test]
    fn shipped_family_specs_keep_publication_edges() {
        // cmap: the link CAS publishes the node's plain key field; every
        // pointer load that may dereference must acquire it.
        assert_eq!(CMapSpec::SPLASH4.link_cas_ok, Ordering::AcqRel);
        assert_eq!(CMapSpec::SPLASH4.head_load, Ordering::Acquire);
        assert_eq!(CMapSpec::SPLASH4.next_load, Ordering::Acquire);
        assert_eq!(CMapSpec::SPLASH4.mark_cas_ok, Ordering::AcqRel);
        // stream ring: the seq store/load pair is the payload handoff.
        assert_eq!(RingSpec::SPLASH4.publish_store, Ordering::Release);
        assert_eq!(RingSpec::SPLASH4.seq_load, Ordering::Acquire);
    }
}
