//! Sync-event tracing hooks: the event vocabulary and the sink interface.
//!
//! The runtime can stream one compact [`TraceEvent`] per synchronization
//! operation to an attached [`TraceSink`]
//! ([`SyncEnv::with_trace`](crate::SyncEnv::with_trace)). The wait-free
//! ring-buffer recorder, codec, and trace→simulation lowering live in the
//! `splash4-trace` crate; this module only defines what the primitives emit,
//! so the runtime has no dependency on the recorder.
//!
//! Events are *logical*: both back-ends of a construct emit the same
//! structural events (`Getsub`, `Rmw{class}`, `Enqueue`…) at the same program
//! points, so a trace captured under one [`SyncMode`](crate::SyncMode) can be
//! replayed under either. The lock-based back-end additionally emits physical
//! [`LockAcq`](TraceEvent::LockAcq) events carrying contention and hold-time
//! observations.
//!
//! Tracing is disabled by default and costs one branch on an unset pointer
//! per sync op; [`NoopSink`] is a zero-sized stand-in for explicit "attached
//! but discard" configurations.

use crate::mode::ConstructClass;
use std::sync::OnceLock;
use std::time::Instant;

/// One synchronization event, as emitted by the runtime primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Pure computation of `ns` nanoseconds. The runtime never emits this —
    /// compute is reconstructed from inter-event timestamp gaps — but lowered
    /// and decoded traces carry it explicitly.
    Compute {
        /// Duration in nanoseconds.
        ns: u64,
    },
    /// `n` logical read-modify-write operations of a construct class
    /// (reduction update, fine-grained data touch, flag op…). Emitted by both
    /// back-ends: under locks the same logical op happens inside a critical
    /// section.
    Rmw {
        /// Construct class the ops belong to.
        class: ConstructClass,
        /// Number of logical ops.
        n: u32,
    },
    /// A sleeping-lock acquire/release pair completed (lock-based back-end
    /// only; physical observation).
    LockAcq {
        /// `true` if the acquire found the lock held.
        contended: bool,
        /// Time the lock was held, in nanoseconds.
        hold_ns: u64,
    },
    /// Arrival at barrier `id` (before waiting).
    BarrierEnter {
        /// Runtime-wide barrier id (allocation order).
        id: u32,
    },
    /// Release from barrier `id`.
    BarrierExit {
        /// Runtime-wide barrier id (allocation order).
        id: u32,
    },
    /// One `GETSUB` counter grab handing out `n` work items.
    Getsub {
        /// Items claimed by this grab (0 for an exhausted poll).
        n: u32,
    },
    /// A task-queue push.
    Enqueue,
    /// A task-queue pop (successful or final empty poll).
    Dequeue,
}

impl TraceEvent {
    /// Short label for summaries and JSON export.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::Compute { .. } => "compute",
            TraceEvent::Rmw { .. } => "rmw",
            TraceEvent::LockAcq { .. } => "lock_acq",
            TraceEvent::BarrierEnter { .. } => "barrier_enter",
            TraceEvent::BarrierExit { .. } => "barrier_exit",
            TraceEvent::Getsub { .. } => "getsub",
            TraceEvent::Enqueue => "enqueue",
            TraceEvent::Dequeue => "dequeue",
        }
    }
}

/// Receiver for the runtime's event stream.
///
/// `record` is called from kernel threads on synchronization hot paths;
/// implementations must be wait-free on the caller's side (the `splash4-trace`
/// recorder uses one single-producer ring per thread).
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Record `event` from thread `tid` ([`current_tid`](crate::current_tid)).
    fn record(&self, tid: usize, event: TraceEvent);
}

/// Zero-sized sink that discards every event: the "tracing disabled"
/// configuration with the same static shape as a real sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline]
    fn record(&self, _tid: usize, _event: TraceEvent) {}
}

/// Nanoseconds since the process-wide trace epoch (first call). Monotonic;
/// shared by the runtime's hold-time measurement and the recorder's
/// timestamps so both land on one time base.
#[inline]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoopSink>(), 0);
    }

    #[test]
    fn events_are_compact() {
        // The recorder stores events by value in fixed slots; keep them small.
        assert!(std::mem::size_of::<TraceEvent>() <= 16);
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn labels_are_distinct() {
        let events = [
            TraceEvent::Compute { ns: 1 },
            TraceEvent::Rmw {
                class: ConstructClass::Reduction,
                n: 1,
            },
            TraceEvent::LockAcq {
                contended: false,
                hold_ns: 0,
            },
            TraceEvent::BarrierEnter { id: 0 },
            TraceEvent::BarrierExit { id: 0 },
            TraceEvent::Getsub { n: 1 },
            TraceEvent::Enqueue,
            TraceEvent::Dequeue,
        ];
        let labels: std::collections::HashSet<_> = events.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), events.len());
    }
}
