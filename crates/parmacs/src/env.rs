//! [`SyncEnv`]: the factory kernels use to materialize synchronization
//! primitives according to the active [`SyncPolicy`].
//!
//! A kernel never names a concrete barrier or counter type; it asks the
//! environment, and the environment consults the policy per construct class.
//! That single indirection is the entire difference between running a kernel
//! "as Splash-3" and "as Splash-4" — the algorithmic code is byte-identical.

use crate::barrier::{Barrier, CondvarBarrier, SenseBarrier};
use crate::combining::{CombiningBarrier, CombiningCounter, CombiningDispenser, CombiningReducer};
use crate::counter::{AtomicCounter, IndexCounter, LockedCounter};
use crate::flag::{AtomicFlag, CondvarFlag, PauseVar};
use crate::lock::{RawLock, SleepLock};
use crate::mode::{ConstructClass, SyncMode, SyncPolicy};
use crate::queue::{LockedQueue, StealPool, TaskQueue, TicketDispenser, TreiberStack};
use crate::reduce::{AtomicReducer, LockedReducer, ReduceF64, ReduceU64};
use crate::stats::{Counter, SyncCounters, SyncProfile};
use crate::trace::TraceSink;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Synchronization environment: policy + team size + shared instrumentation.
#[derive(Clone)]
pub struct SyncEnv {
    policy: SyncPolicy,
    nthreads: usize,
    stats: Arc<SyncCounters>,
}

impl SyncEnv {
    /// Environment for `nthreads` threads under `policy` (a plain
    /// [`SyncMode`] converts into a uniform policy).
    ///
    /// # Panics
    /// Panics if `nthreads == 0`.
    pub fn new(policy: impl Into<SyncPolicy>, nthreads: usize) -> SyncEnv {
        assert!(nthreads > 0, "environment needs at least one thread");
        SyncEnv {
            policy: policy.into(),
            nthreads,
            // One padded instrumentation lane per team member, so every
            // thread's counter bumps stay on a thread-private cache line.
            stats: Arc::new(SyncCounters::with_lanes(nthreads)),
        }
    }

    /// Replace the instrumentation block with one striped across `lanes`
    /// padded lanes (the default is one lane per team member).
    ///
    /// `with_stat_lanes(1)` gives the single-shared-slot reference
    /// configuration — striping must be observationally transparent, so a
    /// kernel run under either configuration reports identical logical op
    /// counts (the `striped_stats` integration test pins this down).
    ///
    /// Builder-style; call before creating any primitive and before
    /// [`SyncEnv::with_trace`] (primitives capture the stats block at
    /// construction).
    pub fn with_stat_lanes(mut self, lanes: usize) -> SyncEnv {
        self.stats = Arc::new(SyncCounters::with_lanes(lanes));
        self
    }

    /// Attach a trace sink: every primitive created by this environment will
    /// emit [`crate::trace::TraceEvent`]s into it, attributed to the calling
    /// thread's team index. Builder-style so it composes with
    /// [`SyncEnv::new`]; attaching twice panics (the sink is write-once for
    /// the life of the environment).
    ///
    /// With no sink attached the per-op cost is one relaxed atomic load and a
    /// never-taken branch; instrumentation counters are unaffected either way.
    pub fn with_trace(self, sink: Arc<dyn TraceSink>) -> SyncEnv {
        assert!(
            self.stats.set_tracer(sink),
            "trace sink already attached to this environment"
        );
        self
    }

    /// The active policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Team size this environment was built for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The back-end selected for `class`.
    pub fn mode_for(&self, class: ConstructClass) -> SyncMode {
        self.policy.mode_for(class)
    }

    /// `true` if fine-grained data updates should go through locks
    /// (Splash-3) rather than atomic RMWs on the data itself (Splash-4).
    /// Kernels branch on this for their force-accumulation / cell-insertion
    /// inner loops.
    pub fn data_locks(&self) -> bool {
        self.mode_for(ConstructClass::DataLock) == SyncMode::LockBased
    }

    /// The shared instrumentation block.
    pub fn stats(&self) -> &Arc<SyncCounters> {
        &self.stats
    }

    /// Snapshot of all instrumentation counters.
    pub fn profile(&self) -> SyncProfile {
        self.stats.snapshot()
    }

    /// Record `n` atomic read-modify-writes performed directly by kernel code
    /// (lock-free fine-grained updates that bypass the factory primitives).
    pub fn note_rmws(&self, n: u64) {
        self.stats.add(Counter::AtomicRmws, n);
    }

    /// A phase barrier for the full team, per the barrier-class policy.
    pub fn barrier(&self) -> Arc<dyn Barrier> {
        self.barrier_for(self.nthreads)
    }

    /// A phase barrier for `n` participants (sub-team barriers).
    pub fn barrier_for(&self, n: usize) -> Arc<dyn Barrier> {
        match self.mode_for(ConstructClass::Barrier) {
            SyncMode::LockBased => Arc::new(CondvarBarrier::new(n, Arc::clone(&self.stats))),
            SyncMode::LockFree => Arc::new(SenseBarrier::new(n, Arc::clone(&self.stats))),
            SyncMode::Combining => Arc::new(CombiningBarrier::new(n, Arc::clone(&self.stats))),
        }
    }

    /// A fine-grained data lock (always a sleeping lock: Splash-4 removes
    /// these rather than replacing them — see [`SyncEnv::data_locks`]).
    pub fn lock(&self) -> Arc<dyn RawLock> {
        Arc::new(SleepLock::new(Arc::clone(&self.stats)))
    }

    /// An array of `n` data locks (the PARMACS `ALOCK` construct).
    pub fn lock_array(&self, n: usize) -> Vec<Arc<dyn RawLock>> {
        (0..n).map(|_| self.lock()).collect()
    }

    /// A `GETSUB` work-index dispenser over `range`, per the counter-class
    /// policy. The `name` is documentation-only (mirrors the original code's
    /// named global counters).
    pub fn counter(&self, name: &str, range: Range<usize>) -> Arc<dyn IndexCounter> {
        let _ = name;
        match self.mode_for(ConstructClass::Counter) {
            SyncMode::LockBased => Arc::new(LockedCounter::new(range, Arc::clone(&self.stats))),
            SyncMode::LockFree => Arc::new(AtomicCounter::new(range, Arc::clone(&self.stats))),
            SyncMode::Combining => Arc::new(CombiningCounter::new(
                range,
                self.nthreads,
                Arc::clone(&self.stats),
            )),
        }
    }

    /// A global floating-point reduction cell, per the reduction-class policy.
    pub fn reducer_f64(&self) -> Arc<dyn ReduceF64> {
        match self.mode_for(ConstructClass::Reduction) {
            SyncMode::LockBased => Arc::new(LockedReducer::new(Arc::clone(&self.stats))),
            SyncMode::LockFree => Arc::new(AtomicReducer::new(Arc::clone(&self.stats))),
            SyncMode::Combining => Arc::new(CombiningReducer::new(
                self.nthreads,
                Arc::clone(&self.stats),
            )),
        }
    }

    /// A global integer reduction cell, per the reduction-class policy.
    pub fn reducer_u64(&self) -> Arc<dyn ReduceU64> {
        match self.mode_for(ConstructClass::Reduction) {
            SyncMode::LockBased => Arc::new(LockedReducer::new(Arc::clone(&self.stats))),
            SyncMode::LockFree => Arc::new(AtomicReducer::new(Arc::clone(&self.stats))),
            SyncMode::Combining => Arc::new(CombiningReducer::new(
                self.nthreads,
                Arc::clone(&self.stats),
            )),
        }
    }

    /// A pause/flag variable, per the flag-class policy. Combining mode
    /// reuses the atomic flag: a pause variable is a single store/load edge
    /// with nothing to batch, so flat combining would only add latency.
    pub fn flag(&self) -> Arc<dyn PauseVar> {
        match self.mode_for(ConstructClass::Flag) {
            SyncMode::LockBased => Arc::new(CondvarFlag::new(Arc::clone(&self.stats))),
            SyncMode::LockFree | SyncMode::Combining => {
                Arc::new(AtomicFlag::new(Arc::clone(&self.stats)))
            }
        }
    }

    /// An array of `n` pause variables (per-column done flags, etc.).
    pub fn flag_array(&self, n: usize) -> Vec<Arc<dyn PauseVar>> {
        (0..n).map(|_| self.flag()).collect()
    }

    /// A dynamic MPMC task pool, per the queue-class policy. Combining mode
    /// reuses the Treiber stack: combining targets the *static* contended
    /// constructs (counters, reductions, barrier arrival, ticket pools);
    /// dynamic push/pop traffic keeps the lock-free structure.
    pub fn task_queue<T: Send + 'static>(&self) -> Arc<dyn TaskQueue<T>> {
        match self.mode_for(ConstructClass::Queue) {
            SyncMode::LockBased => Arc::new(LockedQueue::new(Arc::clone(&self.stats))),
            SyncMode::LockFree | SyncMode::Combining => {
                Arc::new(TreiberStack::new(Arc::clone(&self.stats)))
            }
        }
    }

    /// A work-stealing pool with one queue per team thread, per the
    /// queue-class policy (the distributed-queue structure of radiosity).
    pub fn steal_pool<T: Send + 'static>(&self) -> StealPool<T> {
        StealPool::new((0..self.nthreads).map(|_| self.task_queue()).collect())
    }

    /// A static work pool over a prebuilt task list, per the queue-class
    /// policy: a locked FIFO in lock-based mode, an atomic ticket dispenser
    /// in lock-free mode.
    pub fn work_pool<T: Send + Sync + Clone + 'static>(&self, tasks: Vec<T>) -> WorkPool<T> {
        match self.mode_for(ConstructClass::Queue) {
            SyncMode::LockBased => {
                let q = LockedQueue::new(Arc::clone(&self.stats));
                for t in tasks {
                    q.push(t);
                }
                WorkPool::Locked(q)
            }
            SyncMode::LockFree => {
                WorkPool::Ticket(TicketDispenser::new(tasks, Arc::clone(&self.stats)))
            }
            SyncMode::Combining => WorkPool::Combined(Box::new(CombiningDispenser::new(
                tasks,
                self.nthreads,
                Arc::clone(&self.stats),
            ))),
        }
    }
}

impl fmt::Debug for SyncEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SyncEnv")
            .field("policy", &self.policy.describe())
            .field("nthreads", &self.nthreads)
            .finish()
    }
}

/// Static work pool over a prebuilt task list (see [`SyncEnv::work_pool`]).
#[derive(Debug)]
pub enum WorkPool<T> {
    /// Lock-based back-end: mutex-guarded FIFO.
    Locked(LockedQueue<T>),
    /// Lock-free back-end: atomic ticket over the shared task array.
    Ticket(TicketDispenser<T>),
    /// Combining back-end: claims batched through a flat-combining core
    /// (boxed: the core's per-thread record array dwarfs the other
    /// variants).
    Combined(Box<CombiningDispenser<T>>),
}

impl<T: Send + Sync + Clone> WorkPool<T> {
    /// Claim the next task, or `None` when the pool is exhausted.
    pub fn claim(&self) -> Option<T> {
        match self {
            WorkPool::Locked(q) => q.pop(),
            WorkPool::Ticket(d) => d.claim().cloned(),
            WorkPool::Combined(d) => d.claim().cloned(),
        }
    }

    /// Total number of tasks the pool was built with (ticket/combining
    /// back-ends) or currently holds (locked back-end).
    pub fn len(&self) -> usize {
        match self {
            WorkPool::Locked(q) => q.len(),
            WorkPool::Ticket(d) => d.len(),
            WorkPool::Combined(d) => d.len(),
        }
    }

    /// `true` when no tasks remain to claim (locked) or none were provided
    /// (ticket).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;

    #[test]
    fn lock_based_env_hands_out_lock_based_primitives() {
        let env = SyncEnv::new(SyncMode::LockBased, 2);
        let c = env.counter("x", 0..5);
        while c.next().is_some() {}
        let b = env.barrier();
        Team::new(2).run(|ctx| b.wait(ctx.tid));
        let r = env.reducer_f64();
        r.add(1.0);
        let p = env.profile();
        assert!(p.lock_acquires > 0, "lock-based primitives must take locks");
        assert_eq!(p.atomic_rmws, 0, "no atomic RMWs in pure lock-based mode");
    }

    #[test]
    fn lock_free_env_takes_no_locks() {
        let env = SyncEnv::new(SyncMode::LockFree, 2);
        let c = env.counter("x", 0..5);
        while c.next().is_some() {}
        let b = env.barrier();
        Team::new(2).run(|ctx| b.wait(ctx.tid));
        let r = env.reducer_f64();
        r.add(1.0);
        let q = env.task_queue::<u32>();
        q.push(1);
        let _ = q.pop();
        let p = env.profile();
        assert_eq!(p.lock_acquires, 0, "lock-free mode must not acquire locks");
        assert!(p.atomic_rmws > 0);
    }

    #[test]
    fn combining_env_takes_no_locks_and_batches() {
        let env = SyncEnv::new(SyncMode::Combining, 2);
        let c = env.counter("x", 0..5);
        while c.next().is_some() {}
        let b = env.barrier();
        Team::new(2).run(|ctx| b.wait(ctx.tid));
        let r = env.reducer_f64();
        r.add(1.0);
        let p = env.profile();
        assert_eq!(p.lock_acquires, 0, "combining mode must not take locks");
        assert!(p.combine_ops > 0, "requests must route through the core");
        assert!(p.combine_batches >= 1);
        assert!(p.atomic_rmws > 0);
        // Logical class tallies are identical to the other generations.
        assert_eq!(p.getsub_calls, 6);
        assert_eq!(p.barrier_waits, 2);
        assert_eq!(p.reduce_ops, 1);
        assert!(!env.data_locks());
    }

    #[test]
    fn ablation_policy_mixes_backends() {
        let policy = SyncPolicy::uniform(SyncMode::LockBased)
            .with(ConstructClass::Counter, SyncMode::LockFree);
        let env = SyncEnv::new(policy, 1);
        let c = env.counter("x", 0..3);
        while c.next().is_some() {}
        let p = env.profile();
        assert_eq!(p.lock_acquires, 0);
        assert_eq!(p.atomic_rmws, 4);
        // Reductions still lock-based under this policy.
        env.reducer_f64().add(1.0);
        assert_eq!(env.profile().lock_acquires, 1);
    }

    #[test]
    fn work_pool_distributes_all_tasks_in_both_modes() {
        for mode in SyncMode::ALL {
            let env = SyncEnv::new(mode, 3);
            let pool = env.work_pool((0..30).collect::<Vec<u32>>());
            assert_eq!(pool.len(), 30);
            let got = std::sync::Mutex::new(Vec::new());
            Team::new(3).run(|_| {
                while let Some(t) = pool.claim() {
                    got.lock().unwrap().push(t);
                }
            });
            let mut got = got.into_inner().unwrap();
            got.sort_unstable();
            assert_eq!(got, (0..30).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn data_locks_reflects_policy() {
        assert!(SyncEnv::new(SyncMode::LockBased, 1).data_locks());
        assert!(!SyncEnv::new(SyncMode::LockFree, 1).data_locks());
    }
}
