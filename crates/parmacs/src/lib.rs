//! PARMACS-style parallel runtime with interchangeable synchronization back-ends.
//!
//! The original Splash benchmarks are written against the ANL/PARMACS macro set
//! (`CREATE`, `BARRIER`, `LOCK`/`UNLOCK`, `GETSUB`, `PAUSE`/`SETPAUSE`, …).
//! Splash-3 expands those macros to pthreads mutexes, condition variables and
//! condvar barriers; **Splash-4's contribution is to re-expand them to C11
//! atomic (lock-free) constructs** without touching the algorithms.
//!
//! This crate is that macro layer as a library. Every synchronization class the
//! suite uses has interchangeable back-ends selected by [`SyncMode`]
//! (or per-construct by [`SyncPolicy`] for ablation studies). A third
//! generation, `splash4x` ([`SyncMode::Combining`]), batches the contended
//! constructs through a flat-combining/CC-Synch core instead of CAS-storming:
//!
//! | construct | lock-based (≙ Splash-3) | lock-free (≙ Splash-4) | combining (splash4x) |
//! |---|---|---|---|
//! | barrier | mutex + condvar generation barrier | sense-reversing atomic barrier | combining arrival + sense release |
//! | lock | sleeping mutex (futex-style) | — (locks are what gets removed) | — |
//! | `GETSUB` index counter | lock-protected counter | `fetch_add` | combined batch grab |
//! | f64/u64 reduction | lock-protected accumulator | CAS-loop on atomic word | combined batch fold |
//! | pause/flag variable | mutex + condvar | atomic flag, acquire/release | atomic flag (nothing to batch) |
//! | task queue | mutex + `VecDeque` | Treiber stack / atomic ticket | Treiber stack / combined ticket |
//!
//! All primitives are instrumented: dynamic operation counts and (for the
//! sleep-prone classes) nanoseconds are recorded into a shared
//! [`stats::SyncCounters`], which the characterization harness turns into the
//! paper's sync-op tables and time-breakdown figures.
//!
//! # Example
//!
//! ```
//! use splash4_parmacs::{SyncMode, SyncEnv, Team};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let env = SyncEnv::new(SyncMode::LockFree, 4);
//! let barrier = env.barrier();
//! let counter = env.counter("work", 0..100);
//! let sum = AtomicU64::new(0);
//!
//! Team::new(4).run(|ctx| {
//!     // Distribute 100 work items dynamically, GETSUB-style.
//!     while let Some(i) = counter.next() {
//!         sum.fetch_add(i as u64, Ordering::Relaxed);
//!     }
//!     barrier.wait(ctx.tid);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), (0..100u64).sum());
//! let profile = env.profile();
//! assert_eq!(profile.getsub_calls, 104); // 100 grabs + 4 exhausted polls
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backoff;
pub mod barrier;
pub mod combining;
pub mod counter;
pub mod env;
pub mod flag;
pub mod json;
pub mod lock;
#[macro_use]
pub mod macros;
pub mod mode;
pub mod pad;
pub mod queue;
pub mod reduce;
pub mod rng;
pub mod spec;
pub mod stats;
pub mod team;
pub mod trace;
pub mod workload;

pub use backoff::Backoff;
pub use barrier::{Barrier, CondvarBarrier, SenseBarrier, TreeBarrier};
pub use combining::{
    CombiningBarrier, CombiningCore, CombiningCounter, CombiningDispenser, CombiningReducer,
};
pub use counter::{AtomicCounter, IndexCounter, LockedCounter};
pub use env::{SyncEnv, WorkPool};
pub use flag::{AtomicFlag, CondvarFlag, PauseVar};
pub use json::{Json, ToJson};
pub use lock::{RawLock, SleepLock, TasLock, TicketLock};
pub use mode::{ConstructClass, SyncMode, SyncPolicy};
pub use pad::CachePadded;
pub use queue::{
    BoundedMpmcQueue, LockedQueue, StealPool, TaskQueue, TicketDispenser, TreiberStack,
};
pub use reduce::{AtomicF64, AtomicReducer, LockedReducer, ReduceF64, ReduceU64};
pub use rng::SmallRng;
pub use spec::{
    CMapSpec, CasF64Spec, CombiningSpec, EliminationSpec, EpochSpec, FlagSpec, HazardSpec,
    MsQueueSpec, RingSpec, SenseBarrierSpec, TicketSpec, TreiberSpec,
};
pub use stats::{Counter, SyncCounters, SyncProfile};
pub use team::{chunk_range, current_tid, Team, TeamCtx};
pub use trace::{NoopSink, TraceEvent, TraceSink};
pub use workload::{Dispatch, PhaseSpec, WorkModel};
