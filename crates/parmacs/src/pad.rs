//! Cache-line padding.
//!
//! [`CachePadded`] aligns (and therefore pads) its contents to 128 bytes —
//! two 64-byte lines — so adjacent instances never share a cache line even
//! on processors that prefetch line pairs (Intel's spatial prefetcher, and
//! the 128-byte coherence granule on recent Apple/ARM parts). This is the
//! standard false-sharing defence used by the Splash-4 runtime wherever
//! per-thread or per-node hot words sit next to each other in an array:
//! tree-barrier nodes, striped instrumentation lanes, and any future
//! per-core scratch.

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes to avoid false sharing.
///
/// `CachePadded<T>` derefs to `T`, so wrapped values are used exactly like
/// bare ones; only their placement in memory changes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in alignment padding.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwrap, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> CachePadded<T> {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_values_are_line_sized_apart() {
        let arr = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert_eq!(b - a, 128);
        assert_eq!(a % 128, 0);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn size_is_multiple_of_alignment() {
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<[u64; 12]>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<[u64; 17]>>(), 256);
    }
}
