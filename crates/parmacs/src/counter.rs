//! Dynamic index distribution (`GETSUB` in PARMACS).
//!
//! The single most common Splash-3 → Splash-4 transformation: the loop
//! ```c
//! LOCK(gl->lock); i = gl->index++; UNLOCK(gl->lock);
//! ```
//! becomes `i = atomic_fetch_add(&gl->index, 1)`.
//!
//! [`IndexCounter`] is the common interface; [`LockedCounter`] and
//! [`AtomicCounter`] are the two expansions. Both hand out each index of the
//! configured range exactly once, across any number of threads, and then
//! return `None`. Chunked grabs ([`IndexCounter::next_chunk`]) model the
//! block-`GETSUB` variant some kernels use.

use crate::lock::{RawLock, SleepLock};
use crate::stats::{Counter, SyncCounters};
use crate::trace::TraceEvent;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A work-index dispenser over a half-open range.
pub trait IndexCounter: Send + Sync + fmt::Debug {
    /// Grab the next undistributed index, or `None` when the range is
    /// exhausted.
    fn next(&self) -> Option<usize>;

    /// Grab up to `chunk` consecutive indices; returns an empty range when
    /// exhausted. `chunk` must be non-zero.
    fn next_chunk(&self, chunk: usize) -> Range<usize>;

    /// The range being distributed.
    fn range(&self) -> Range<usize>;

    /// Reset the dispenser to the start of its range.
    ///
    /// Callers must ensure no thread is concurrently grabbing (normally done
    /// between barrier-separated phases, as in the original suite).
    fn reset(&self);
}

/// Lock-protected counter (Splash-3 expansion of `GETSUB`).
pub struct LockedCounter {
    range: Range<usize>,
    next: SleepLock,
    value: std::cell::UnsafeCell<usize>,
    stats: Arc<SyncCounters>,
}

// SAFETY: `value` is only accessed with `next` held (or from `reset`, whose
// contract requires external quiescence).
unsafe impl Sync for LockedCounter {}
unsafe impl Send for LockedCounter {}

impl LockedCounter {
    /// Dispenser over `range` reporting into `stats`.
    pub fn new(range: Range<usize>, stats: Arc<SyncCounters>) -> LockedCounter {
        LockedCounter {
            value: std::cell::UnsafeCell::new(range.start),
            next: SleepLock::new(Arc::clone(&stats)),
            range,
            stats,
        }
    }
}

impl IndexCounter for LockedCounter {
    fn next(&self) -> Option<usize> {
        self.stats.bump(Counter::GetsubCalls);
        self.next.acquire();
        // SAFETY: lock held.
        let v = unsafe { &mut *self.value.get() };
        let out = if *v < self.range.end {
            let i = *v;
            *v += 1;
            Some(i)
        } else {
            None
        };
        self.next.release();
        self.stats.trace(TraceEvent::Getsub {
            n: u32::from(out.is_some()),
        });
        out
    }

    fn next_chunk(&self, chunk: usize) -> Range<usize> {
        assert!(chunk > 0, "chunk must be non-zero");
        self.stats.bump(Counter::GetsubCalls);
        self.next.acquire();
        // SAFETY: lock held.
        let v = unsafe { &mut *self.value.get() };
        let start = *v;
        let end = (start + chunk).min(self.range.end);
        *v = end;
        self.next.release();
        self.stats.trace(TraceEvent::Getsub {
            n: (end - start) as u32,
        });
        start..end
    }

    fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    fn reset(&self) {
        self.next.acquire();
        // SAFETY: lock held.
        unsafe { *self.value.get() = self.range.start };
        self.next.release();
    }
}

impl fmt::Debug for LockedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedCounter")
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

/// `fetch_add` counter (Splash-4 expansion of `GETSUB`).
pub struct AtomicCounter {
    range: Range<usize>,
    value: AtomicUsize,
    stats: Arc<SyncCounters>,
}

impl AtomicCounter {
    /// Dispenser over `range` reporting into `stats`.
    pub fn new(range: Range<usize>, stats: Arc<SyncCounters>) -> AtomicCounter {
        AtomicCounter {
            value: AtomicUsize::new(range.start),
            range,
            stats,
        }
    }

    /// Pull an overshot counter value back to `range.end`.
    ///
    /// Without this, every exhausted poll keeps `fetch_add`ing the raw value
    /// toward `usize` overflow, and a wrapped counter would hand out
    /// duplicate indices. Retries are bounded: a lost CAS means another
    /// exhausted grabber moved the value and will clamp it itself, so the
    /// overshoot stays bounded by the number of in-flight grabs. The clamp
    /// is deliberately *not* instrumented — it is bookkeeping, not a logical
    /// `GETSUB` operation, so `T2`/`T3` op counts are unchanged.
    #[cold]
    fn clamp(&self, observed: usize) {
        let end = self.range.end;
        let mut cur = observed;
        for _ in 0..8 {
            if cur <= end {
                return;
            }
            match self
                .value
                .compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }
}

impl IndexCounter for AtomicCounter {
    fn next(&self) -> Option<usize> {
        self.stats.bump(Counter::GetsubCalls);
        self.stats.bump(Counter::AtomicRmws);
        let i = self
            .value
            .fetch_add(1, crate::spec::TicketSpec::SPLASH4.claim_rmw);
        let out = (i < self.range.end).then_some(i);
        if out.is_none() {
            self.clamp(i.wrapping_add(1));
        }
        self.stats.trace(TraceEvent::Getsub {
            n: u32::from(out.is_some()),
        });
        out
    }

    fn next_chunk(&self, chunk: usize) -> Range<usize> {
        assert!(chunk > 0, "chunk must be non-zero");
        self.stats.bump(Counter::GetsubCalls);
        self.stats.bump(Counter::AtomicRmws);
        let raw = self
            .value
            .fetch_add(chunk, crate::spec::TicketSpec::SPLASH4.claim_rmw);
        let start = raw.min(self.range.end);
        let end = (start + chunk).min(self.range.end);
        if raw.wrapping_add(chunk) > self.range.end {
            self.clamp(raw.wrapping_add(chunk));
        }
        self.stats.trace(TraceEvent::Getsub {
            n: (end - start) as u32,
        });
        start..end
    }

    fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    fn reset(&self) {
        self.value.store(self.range.start, Ordering::Release);
    }
}

impl fmt::Debug for AtomicCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicCounter")
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn partition_exactly(counter: Arc<dyn IndexCounter>, threads: usize) {
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..threads {
                let counter = Arc::clone(&counter);
                let seen = &seen;
                s.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(i) = counter.next() {
                        local.push(i);
                    }
                    let mut set = seen.lock().unwrap();
                    for i in local {
                        assert!(set.insert(i), "index {i} handed out twice");
                    }
                });
            }
        });
        let set = seen.into_inner().unwrap();
        let range = counter.range();
        assert_eq!(set.len(), range.len());
        for i in range {
            assert!(set.contains(&i));
        }
    }

    #[test]
    fn locked_counter_partitions_range() {
        let stats = Arc::new(SyncCounters::new());
        partition_exactly(Arc::new(LockedCounter::new(5..205, stats)), 4);
    }

    #[test]
    fn atomic_counter_partitions_range() {
        let stats = Arc::new(SyncCounters::new());
        partition_exactly(Arc::new(AtomicCounter::new(5..205, stats)), 4);
    }

    fn chunks_partition(counter: &dyn IndexCounter) {
        let mut got = Vec::new();
        loop {
            let r = counter.next_chunk(7);
            if r.is_empty() {
                break;
            }
            got.extend(r);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_grabs_cover_range() {
        let stats = Arc::new(SyncCounters::new());
        chunks_partition(&LockedCounter::new(0..100, Arc::clone(&stats)));
        chunks_partition(&AtomicCounter::new(0..100, stats));
    }

    #[test]
    fn reset_restarts_distribution() {
        let stats = Arc::new(SyncCounters::new());
        let c = AtomicCounter::new(0..3, stats);
        assert_eq!(c.next(), Some(0));
        while c.next().is_some() {}
        assert_eq!(c.next(), None);
        c.reset();
        assert_eq!(c.next(), Some(0));
    }

    #[test]
    fn exhausted_atomic_counter_does_not_drift() {
        // Regression test: repeated grabs after exhaustion used to keep
        // fetch_adding the raw value toward usize overflow (and, wrapped,
        // would eventually hand out duplicate indices). The clamp must keep
        // the overshoot bounded by the number of in-flight grabbers, while
        // every poll still reports exhaustion.
        let stats = Arc::new(SyncCounters::new());
        let c = Arc::new(AtomicCounter::new(0..10, Arc::clone(&stats)));
        const THREADS: usize = 4;
        const POLLS: usize = 50_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    while c.next().is_some() {}
                    for _ in 0..POLLS {
                        assert_eq!(c.next(), None);
                        assert!(c.next_chunk(7).is_empty());
                    }
                });
            }
        });
        let raw = c.value.load(Ordering::Relaxed);
        assert!(
            raw <= c.range.end + THREADS * 7,
            "counter drifted to {raw} after exhaustion (end {})",
            c.range.end
        );
        // Single-threaded quiescent poll leaves the value exactly clamped.
        assert_eq!(c.next(), None);
        assert_eq!(c.value.load(Ordering::Relaxed), c.range.end);
        // The clamp itself is not instrumented: every logical grab (the
        // exhausted polls included) counts exactly one getsub + one RMW.
        let p = stats.snapshot();
        assert_eq!(p.getsub_calls, p.atomic_rmws);
    }

    #[test]
    fn atomic_counter_counts_rmws() {
        let stats = Arc::new(SyncCounters::new());
        let c = AtomicCounter::new(0..10, Arc::clone(&stats));
        while c.next().is_some() {}
        let p = stats.snapshot();
        assert_eq!(p.getsub_calls, 11);
        assert_eq!(p.atomic_rmws, 11);
        assert_eq!(p.lock_acquires, 0);
    }

    #[test]
    fn locked_counter_takes_locks_not_rmws() {
        let stats = Arc::new(SyncCounters::new());
        let c = LockedCounter::new(0..10, Arc::clone(&stats));
        while c.next().is_some() {}
        let p = stats.snapshot();
        assert_eq!(p.getsub_calls, 11);
        assert_eq!(p.lock_acquires, 11);
        assert_eq!(p.atomic_rmws, 0);
    }
}
