//! Dynamic index distribution (`GETSUB` in PARMACS).
//!
//! The single most common Splash-3 → Splash-4 transformation: the loop
//! ```c
//! LOCK(gl->lock); i = gl->index++; UNLOCK(gl->lock);
//! ```
//! becomes `i = atomic_fetch_add(&gl->index, 1)`.
//!
//! [`IndexCounter`] is the common interface; [`LockedCounter`] and
//! [`AtomicCounter`] are the two expansions. Both hand out each index of the
//! configured range exactly once, across any number of threads, and then
//! return `None`. Chunked grabs ([`IndexCounter::next_chunk`]) model the
//! block-`GETSUB` variant some kernels use.

use crate::lock::{RawLock, SleepLock};
use crate::stats::SyncCounters;
use crate::trace::TraceEvent;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A work-index dispenser over a half-open range.
pub trait IndexCounter: Send + Sync + fmt::Debug {
    /// Grab the next undistributed index, or `None` when the range is
    /// exhausted.
    fn next(&self) -> Option<usize>;

    /// Grab up to `chunk` consecutive indices; returns an empty range when
    /// exhausted. `chunk` must be non-zero.
    fn next_chunk(&self, chunk: usize) -> Range<usize>;

    /// The range being distributed.
    fn range(&self) -> Range<usize>;

    /// Reset the dispenser to the start of its range.
    ///
    /// Callers must ensure no thread is concurrently grabbing (normally done
    /// between barrier-separated phases, as in the original suite).
    fn reset(&self);
}

/// Lock-protected counter (Splash-3 expansion of `GETSUB`).
pub struct LockedCounter {
    range: Range<usize>,
    next: SleepLock,
    value: std::cell::UnsafeCell<usize>,
    stats: Arc<SyncCounters>,
}

// SAFETY: `value` is only accessed with `next` held (or from `reset`, whose
// contract requires external quiescence).
unsafe impl Sync for LockedCounter {}
unsafe impl Send for LockedCounter {}

impl LockedCounter {
    /// Dispenser over `range` reporting into `stats`.
    pub fn new(range: Range<usize>, stats: Arc<SyncCounters>) -> LockedCounter {
        LockedCounter {
            value: std::cell::UnsafeCell::new(range.start),
            next: SleepLock::new(Arc::clone(&stats)),
            range,
            stats,
        }
    }
}

impl IndexCounter for LockedCounter {
    fn next(&self) -> Option<usize> {
        SyncCounters::bump(&self.stats.getsub_calls);
        self.next.acquire();
        // SAFETY: lock held.
        let v = unsafe { &mut *self.value.get() };
        let out = if *v < self.range.end {
            let i = *v;
            *v += 1;
            Some(i)
        } else {
            None
        };
        self.next.release();
        self.stats.trace(TraceEvent::Getsub {
            n: u32::from(out.is_some()),
        });
        out
    }

    fn next_chunk(&self, chunk: usize) -> Range<usize> {
        assert!(chunk > 0, "chunk must be non-zero");
        SyncCounters::bump(&self.stats.getsub_calls);
        self.next.acquire();
        // SAFETY: lock held.
        let v = unsafe { &mut *self.value.get() };
        let start = *v;
        let end = (start + chunk).min(self.range.end);
        *v = end;
        self.next.release();
        self.stats.trace(TraceEvent::Getsub {
            n: (end - start) as u32,
        });
        start..end
    }

    fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    fn reset(&self) {
        self.next.acquire();
        // SAFETY: lock held.
        unsafe { *self.value.get() = self.range.start };
        self.next.release();
    }
}

impl fmt::Debug for LockedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedCounter")
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

/// `fetch_add` counter (Splash-4 expansion of `GETSUB`).
pub struct AtomicCounter {
    range: Range<usize>,
    value: AtomicUsize,
    stats: Arc<SyncCounters>,
}

impl AtomicCounter {
    /// Dispenser over `range` reporting into `stats`.
    pub fn new(range: Range<usize>, stats: Arc<SyncCounters>) -> AtomicCounter {
        AtomicCounter {
            value: AtomicUsize::new(range.start),
            range,
            stats,
        }
    }
}

impl IndexCounter for AtomicCounter {
    fn next(&self) -> Option<usize> {
        SyncCounters::bump(&self.stats.getsub_calls);
        SyncCounters::bump(&self.stats.atomic_rmws);
        let i = self
            .value
            .fetch_add(1, crate::spec::TicketSpec::SPLASH4.claim_rmw);
        let out = (i < self.range.end).then_some(i);
        self.stats.trace(TraceEvent::Getsub {
            n: u32::from(out.is_some()),
        });
        out
    }

    fn next_chunk(&self, chunk: usize) -> Range<usize> {
        assert!(chunk > 0, "chunk must be non-zero");
        SyncCounters::bump(&self.stats.getsub_calls);
        SyncCounters::bump(&self.stats.atomic_rmws);
        let start = self
            .value
            .fetch_add(chunk, crate::spec::TicketSpec::SPLASH4.claim_rmw);
        let start = start.min(self.range.end);
        let end = (start + chunk).min(self.range.end);
        self.stats.trace(TraceEvent::Getsub {
            n: (end - start) as u32,
        });
        start..end
    }

    fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    fn reset(&self) {
        self.value.store(self.range.start, Ordering::Release);
    }
}

impl fmt::Debug for AtomicCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicCounter")
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn partition_exactly(counter: Arc<dyn IndexCounter>, threads: usize) {
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..threads {
                let counter = Arc::clone(&counter);
                let seen = &seen;
                s.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(i) = counter.next() {
                        local.push(i);
                    }
                    let mut set = seen.lock().unwrap();
                    for i in local {
                        assert!(set.insert(i), "index {i} handed out twice");
                    }
                });
            }
        });
        let set = seen.into_inner().unwrap();
        let range = counter.range();
        assert_eq!(set.len(), range.len());
        for i in range {
            assert!(set.contains(&i));
        }
    }

    #[test]
    fn locked_counter_partitions_range() {
        let stats = Arc::new(SyncCounters::new());
        partition_exactly(Arc::new(LockedCounter::new(5..205, stats)), 4);
    }

    #[test]
    fn atomic_counter_partitions_range() {
        let stats = Arc::new(SyncCounters::new());
        partition_exactly(Arc::new(AtomicCounter::new(5..205, stats)), 4);
    }

    fn chunks_partition(counter: &dyn IndexCounter) {
        let mut got = Vec::new();
        loop {
            let r = counter.next_chunk(7);
            if r.is_empty() {
                break;
            }
            got.extend(r);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_grabs_cover_range() {
        let stats = Arc::new(SyncCounters::new());
        chunks_partition(&LockedCounter::new(0..100, Arc::clone(&stats)));
        chunks_partition(&AtomicCounter::new(0..100, stats));
    }

    #[test]
    fn reset_restarts_distribution() {
        let stats = Arc::new(SyncCounters::new());
        let c = AtomicCounter::new(0..3, stats);
        assert_eq!(c.next(), Some(0));
        while c.next().is_some() {}
        assert_eq!(c.next(), None);
        c.reset();
        assert_eq!(c.next(), Some(0));
    }

    #[test]
    fn atomic_counter_counts_rmws() {
        let stats = Arc::new(SyncCounters::new());
        let c = AtomicCounter::new(0..10, Arc::clone(&stats));
        while c.next().is_some() {}
        let p = stats.snapshot();
        assert_eq!(p.getsub_calls, 11);
        assert_eq!(p.atomic_rmws, 11);
        assert_eq!(p.lock_acquires, 0);
    }

    #[test]
    fn locked_counter_takes_locks_not_rmws() {
        let stats = Arc::new(SyncCounters::new());
        let c = LockedCounter::new(0..10, Arc::clone(&stats));
        while c.next().is_some() {}
        let p = stats.snapshot();
        assert_eq!(p.getsub_calls, 11);
        assert_eq!(p.lock_acquires, 11);
        assert_eq!(p.atomic_rmws, 0);
    }
}
