//! Flat-combining / CC-Synch core: the Splash-4x (`SyncMode::Combining`)
//! back-end for the suite's contended constructs.
//!
//! Splash-4 replaces locks with per-thread CAS loops; under heavy contention
//! every one of those CASes pays a full cache-line transfer, and failed
//! attempts pay it again (Schweizer/Besta/Hoefler). Combining goes one
//! generation further, per Kallimanis's *Synch* framework: each thread
//! *publishes* its request into a cache-padded per-thread record, one thread
//! CASes a lock word to become the **combiner**, walks the publication list
//! applying the whole batch against combiner-cached state, and hands each
//! result back through the record. Waiters spin locally on their own record
//! with [`Backoff`] instead of hammering the shared line.
//!
//! [`CombiningCore`] is the generic engine; [`CombiningCounter`],
//! [`CombiningReducer`], [`CombiningDispenser`] and [`CombiningBarrier`] port
//! the contended primitives (GETSUB counters, f64/u64 reductions, static work
//! pools, barrier arrival) onto it. Every atomic ordering comes from
//! [`CombiningSpec`](crate::spec::CombiningSpec), and `splash4-check` drives
//! shadow replicas of the same protocol from the same spec (`C1-combining`).

use crate::backoff::Backoff;
use crate::barrier::Barrier;
use crate::counter::IndexCounter;
use crate::pad::CachePadded;
use crate::reduce::{ReduceF64, ReduceU64};
use crate::spec::CombiningSpec;
use crate::stats::{Counter, SyncCounters};
use crate::team::current_tid;
use crate::trace::TraceEvent;
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Opcode value meaning "no request pending" in a publication record.
const EMPTY: u64 = 0;

/// A combiner drains repeatedly until a pass finds no pending records, but
/// hands the lock off after this many passes so one thread is never stuck
/// combining forever under sustained load (waiters retry the lock
/// themselves, so progress is preserved).
const MAX_COMBINE_PASSES: usize = 4;

/// One per-thread publication record. Padded so a waiter spinning on its own
/// record never shares a line with another thread's record or the lock word.
#[derive(Debug)]
struct Record {
    /// Claim flag: 0 free, 1 owned by the thread currently running an op.
    busy: AtomicU64,
    /// Pending opcode ([`EMPTY`] when no request is published).
    req: AtomicU64,
    /// Request argument (bit pattern; meaning is opcode-specific).
    arg: AtomicU64,
    /// Operation result, valid once `req` returns to [`EMPTY`].
    result: AtomicU64,
}

impl Record {
    fn new() -> Record {
        Record {
            busy: AtomicU64::new(0),
            req: AtomicU64::new(EMPTY),
            arg: AtomicU64::new(0),
            result: AtomicU64::new(0),
        }
    }
}

/// Flat-combining engine protecting a state value `T`.
///
/// `apply` is the sequential op interpreter: `(state, opcode, arg) ->
/// result`. It runs only on the thread holding the combiner lock, so it may
/// mutate state freely; opcodes are opaque to the core (wrappers define
/// their own, all non-zero).
pub struct CombiningCore<T> {
    /// Combiner lock word: 0 free, 1 held. Padded away from the records.
    lock: CachePadded<AtomicU64>,
    /// One publication record per expected thread.
    records: Box<[CachePadded<Record>]>,
    /// Combiner-owned state; only touched with `lock` held.
    state: UnsafeCell<T>,
    apply: fn(&mut T, u64, u64) -> u64,
    stats: Arc<SyncCounters>,
}

// SAFETY: `state` is only accessed by the thread holding the combiner lock
// (see `combine`), and records are individually atomic.
unsafe impl<T: Send> Sync for CombiningCore<T> {}
unsafe impl<T: Send> Send for CombiningCore<T> {}

impl<T> CombiningCore<T> {
    /// Core for up to `nthreads` concurrent publishers (clamped to at least
    /// one record), applying ops with `apply` and reporting into `stats`.
    pub fn new(
        nthreads: usize,
        state: T,
        apply: fn(&mut T, u64, u64) -> u64,
        stats: Arc<SyncCounters>,
    ) -> CombiningCore<T> {
        let n = nthreads.max(1);
        CombiningCore {
            lock: CachePadded::new(AtomicU64::new(0)),
            records: (0..n).map(|_| CachePadded::new(Record::new())).collect(),
            state: UnsafeCell::new(state),
            apply,
            stats,
        }
    }

    /// Claim a free publication record, preferring the caller's team slot.
    /// Oversubscribed or out-of-team threads probe linearly; with as many
    /// records as team members a record is always eventually free.
    fn claim_record(&self) -> &Record {
        let n = self.records.len();
        let start = current_tid() % n;
        let mut backoff = Backoff::new();
        loop {
            for i in 0..n {
                let rec = &*self.records[(start + i) % n];
                if rec
                    .busy
                    .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return rec;
                }
            }
            backoff.snooze();
        }
    }

    /// Execute `(op, arg)` through the combining protocol and return its
    /// result. `op` must be non-zero.
    pub fn run(&self, op: u64, arg: u64) -> u64 {
        const S: CombiningSpec = CombiningSpec::SPLASH4X;
        debug_assert_ne!(op, EMPTY, "opcode 0 is reserved for empty records");
        self.stats.bump(Counter::CombineOps);
        // The publication itself is the op's one guaranteed atomic RMW-class
        // event (lock CAS attempts are the combining mechanism, not per-op
        // work, and are deliberately not multiplied into the tally).
        self.stats.bump(Counter::AtomicRmws);
        let rec = self.claim_record();
        rec.arg.store(arg, S.arg_store);
        rec.req.store(op, S.publish_store);
        let mut backoff = Backoff::new();
        loop {
            if rec.req.load(S.wait_load) == EMPTY {
                break; // a combiner served us
            }
            if self
                .lock
                .compare_exchange(0, 1, S.lock_cas_ok, S.lock_cas_fail)
                .is_ok()
            {
                // We are the combiner; our own record is drained too.
                self.combine();
                self.lock.store(0, S.lock_release);
                debug_assert_eq!(rec.req.load(Ordering::Relaxed), EMPTY);
                break;
            }
            backoff.snooze();
        }
        let out = rec.result.load(S.result_load);
        rec.busy.store(0, Ordering::Release);
        out
    }

    /// Drain pending publication records. Caller must hold the lock.
    fn combine(&self) {
        const S: CombiningSpec = CombiningSpec::SPLASH4X;
        self.stats.bump(Counter::CombineBatches);
        // SAFETY: combiner lock held — exclusive access to the state.
        let state = unsafe { &mut *self.state.get() };
        for _pass in 0..MAX_COMBINE_PASSES {
            let mut served = 0usize;
            for rec in self.records.iter() {
                let req = rec.req.load(S.scan_load);
                if req != EMPTY {
                    let arg = rec.arg.load(Ordering::Relaxed);
                    let out = (self.apply)(state, req, arg);
                    rec.result.store(out, S.result_store);
                    rec.req.store(EMPTY, S.complete_store);
                    served += 1;
                }
            }
            if served == 0 {
                break;
            }
        }
    }

    /// Number of publication records (the thread capacity of the core).
    pub fn capacity(&self) -> usize {
        self.records.len()
    }
}

impl<T> fmt::Debug for CombiningCore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombiningCore")
            .field("records", &self.records.len())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// GETSUB counter
// ---------------------------------------------------------------------------

/// Combining counter state: the dispensing cursor plus its range bounds
/// (kept in the state so the fn-pointer interpreter can clamp).
#[derive(Debug)]
struct CounterState {
    next: u64,
    start: u64,
    end: u64,
}

const OP_GRAB: u64 = 1; // arg = chunk size; returns pre-grab cursor (≤ end)
const OP_RESET: u64 = 2; // arg = unused
const OP_READ: u64 = 3; // returns current cursor

fn apply_counter(s: &mut CounterState, op: u64, arg: u64) -> u64 {
    match op {
        OP_GRAB => {
            let v = s.next;
            s.next = (v.saturating_add(arg)).min(s.end);
            v
        }
        OP_RESET => {
            s.next = s.start;
            0
        }
        _ => s.next,
    }
}

/// `GETSUB` index dispenser batched through a combiner (the Splash-4x
/// expansion): grabs publish a request instead of `fetch_add`-storming the
/// cursor line. Exhausted polls can never overshoot — the combiner clamps
/// the cursor at the range end, so no [`AtomicCounter`](crate::counter::
/// AtomicCounter)-style clamp-back is needed.
pub struct CombiningCounter {
    range: Range<usize>,
    core: CombiningCore<CounterState>,
    stats: Arc<SyncCounters>,
}

impl CombiningCounter {
    /// Dispenser over `range` for `nthreads` publishers, reporting into
    /// `stats`.
    pub fn new(range: Range<usize>, nthreads: usize, stats: Arc<SyncCounters>) -> CombiningCounter {
        CombiningCounter {
            core: CombiningCore::new(
                nthreads,
                CounterState {
                    next: range.start as u64,
                    start: range.start as u64,
                    end: range.end as u64,
                },
                apply_counter,
                Arc::clone(&stats),
            ),
            range,
            stats,
        }
    }
}

impl IndexCounter for CombiningCounter {
    fn next(&self) -> Option<usize> {
        self.stats.bump(Counter::GetsubCalls);
        let v = self.core.run(OP_GRAB, 1) as usize;
        let out = (v < self.range.end).then_some(v);
        self.stats.trace(TraceEvent::Getsub {
            n: u32::from(out.is_some()),
        });
        out
    }

    fn next_chunk(&self, chunk: usize) -> Range<usize> {
        assert!(chunk > 0, "chunk must be non-zero");
        self.stats.bump(Counter::GetsubCalls);
        let start = self.core.run(OP_GRAB, chunk as u64) as usize;
        let end = (start + chunk).min(self.range.end);
        self.stats.trace(TraceEvent::Getsub {
            n: (end - start) as u32,
        });
        start..end
    }

    fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    fn reset(&self) {
        self.core.run(OP_RESET, 0);
    }
}

impl fmt::Debug for CombiningCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombiningCounter")
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ReduceState {
    f: f64,
    u: u64,
}

const OP_FADD: u64 = 1;
const OP_FMAX: u64 = 2;
const OP_FMIN: u64 = 3;
const OP_FLOAD: u64 = 4;
const OP_FSTORE: u64 = 5;
const OP_UADD: u64 = 6;
const OP_ULOAD: u64 = 7;
const OP_USTORE: u64 = 8;

fn apply_reduce(s: &mut ReduceState, op: u64, arg: u64) -> u64 {
    match op {
        OP_FADD => {
            s.f += f64::from_bits(arg);
            0
        }
        OP_FMAX => {
            s.f = s.f.max(f64::from_bits(arg));
            0
        }
        OP_FMIN => {
            s.f = s.f.min(f64::from_bits(arg));
            0
        }
        OP_FLOAD => s.f.to_bits(),
        OP_FSTORE => {
            s.f = f64::from_bits(arg);
            0
        }
        OP_UADD => {
            s.u += arg;
            0
        }
        OP_ULOAD => s.u,
        _ => {
            s.u = arg;
            0
        }
    }
}

/// Combining reducer (Splash-4x): contributions are batched through one
/// combiner that folds them into combiner-cached accumulators, instead of
/// each thread CAS-looping on the shared word.
pub struct CombiningReducer {
    core: CombiningCore<ReduceState>,
    stats: Arc<SyncCounters>,
}

impl CombiningReducer {
    /// Zero-initialized reducer for `nthreads` publishers, reporting into
    /// `stats`.
    pub fn new(nthreads: usize, stats: Arc<SyncCounters>) -> CombiningReducer {
        CombiningReducer {
            core: CombiningCore::new(
                nthreads,
                ReduceState { f: 0.0, u: 0 },
                apply_reduce,
                Arc::clone(&stats),
            ),
            stats,
        }
    }

    fn contribute(&self, op: u64, arg: u64) {
        self.stats.bump(Counter::ReduceOps);
        self.stats.trace(TraceEvent::Rmw {
            class: crate::mode::ConstructClass::Reduction,
            n: 1,
        });
        self.core.run(op, arg);
    }
}

impl ReduceF64 for CombiningReducer {
    fn add(&self, v: f64) {
        self.contribute(OP_FADD, v.to_bits());
    }
    fn max(&self, v: f64) {
        self.contribute(OP_FMAX, v.to_bits());
    }
    fn min(&self, v: f64) {
        self.contribute(OP_FMIN, v.to_bits());
    }
    fn load(&self) -> f64 {
        f64::from_bits(self.core.run(OP_FLOAD, 0))
    }
    fn store(&self, v: f64) {
        self.core.run(OP_FSTORE, v.to_bits());
    }
}

impl ReduceU64 for CombiningReducer {
    fn add(&self, v: u64) {
        self.contribute(OP_UADD, v);
    }
    fn load(&self) -> u64 {
        self.core.run(OP_ULOAD, 0)
    }
    fn store(&self, v: u64) {
        self.core.run(OP_USTORE, v);
    }
}

impl fmt::Debug for CombiningReducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombiningReducer").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Static work pool (ticket dispenser)
// ---------------------------------------------------------------------------

/// Static work pool over a prebuilt task list with a combining claim path:
/// the Splash-4x counterpart of [`TicketDispenser`](crate::queue::
/// TicketDispenser), for the kernels that distribute an immutable task array.
pub struct CombiningDispenser<T> {
    tasks: Vec<T>,
    core: CombiningCore<CounterState>,
    stats: Arc<SyncCounters>,
}

impl<T: Sync> CombiningDispenser<T> {
    /// Pool over `tasks` for `nthreads` claimers, reporting into `stats`.
    pub fn new(tasks: Vec<T>, nthreads: usize, stats: Arc<SyncCounters>) -> CombiningDispenser<T> {
        let end = tasks.len() as u64;
        CombiningDispenser {
            core: CombiningCore::new(
                nthreads,
                CounterState {
                    next: 0,
                    start: 0,
                    end,
                },
                apply_counter,
                Arc::clone(&stats),
            ),
            tasks,
            stats,
        }
    }

    /// Claim the next task, or `None` when the pool is exhausted.
    pub fn claim(&self) -> Option<&T> {
        self.stats.bump(Counter::QueueOps);
        let v = self.core.run(OP_GRAB, 1) as usize;
        let out = self.tasks.get(v);
        if out.is_some() {
            self.stats.trace(TraceEvent::Dequeue);
        }
        out
    }

    /// Number of tasks already claimed (clamped to the pool size).
    pub fn claimed(&self) -> usize {
        (self.core.run(OP_READ, 0) as usize).min(self.tasks.len())
    }

    /// Total number of tasks in the pool.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the pool was built with no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Restart distribution from the first task. Callers must ensure no
    /// thread is concurrently claiming (between barrier-separated phases).
    pub fn reset(&self) {
        self.core.run(OP_RESET, 0);
    }
}

impl<T> fmt::Debug for CombiningDispenser<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombiningDispenser")
            .field("tasks", &self.tasks.len())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct BarrierState {
    arrived: u64,
    n: u64,
}

const OP_ARRIVE: u64 = 1;
/// Result value telling an arriver it completed the episode.
const ARRIVE_LAST: u64 = 1;

fn apply_arrive(s: &mut BarrierState, _op: u64, _arg: u64) -> u64 {
    s.arrived += 1;
    if s.arrived == s.n {
        s.arrived = 0;
        ARRIVE_LAST
    } else {
        0
    }
}

/// Sense-reversing barrier whose *arrival phase* is batched through a
/// combiner (Splash-4x): one combiner counts a whole batch of arrivals in
/// its cache instead of `n` threads `fetch_add`-ing the same counter line.
/// The release phase is identical to [`SenseBarrier`](crate::barrier::
/// SenseBarrier) — the episode-completing arriver bumps a generation word
/// everyone else spins on with backoff (orderings from
/// [`SenseBarrierSpec`](crate::spec::SenseBarrierSpec)).
pub struct CombiningBarrier {
    n: usize,
    core: CombiningCore<BarrierState>,
    generation: AtomicU64,
    stats: Arc<SyncCounters>,
    trace_id: u32,
}

impl CombiningBarrier {
    /// Barrier for `n` participants reporting into `stats`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, stats: Arc<SyncCounters>) -> CombiningBarrier {
        assert!(n > 0, "barrier needs at least one participant");
        CombiningBarrier {
            n,
            core: CombiningCore::new(
                n,
                BarrierState {
                    arrived: 0,
                    n: n as u64,
                },
                apply_arrive,
                Arc::clone(&stats),
            ),
            generation: AtomicU64::new(0),
            trace_id: stats.alloc_barrier_id(),
            stats,
        }
    }
}

impl Barrier for CombiningBarrier {
    fn wait(&self, _tid: usize) {
        const S: crate::spec::SenseBarrierSpec = crate::spec::SenseBarrierSpec::SPLASH4;
        self.stats.bump(Counter::BarrierWaits);
        self.stats
            .trace(TraceEvent::BarrierEnter { id: self.trace_id });
        self.stats.timed(Counter::BarrierWaitNs, || {
            let gen = self.generation.load(S.generation_load);
            if self.core.run(OP_ARRIVE, 0) == ARRIVE_LAST {
                // Our arrival completed the episode (wherever it was
                // applied); release everyone.
                self.generation.fetch_add(1, S.generation_bump);
            } else {
                let mut backoff = Backoff::new();
                while self.generation.load(S.spin_load) == gen {
                    backoff.snooze();
                }
            }
        });
        self.stats
            .trace(TraceEvent::BarrierExit { id: self.trace_id });
    }

    fn participants(&self) -> usize {
        self.n
    }
}

impl fmt::Debug for CombiningBarrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombiningBarrier")
            .field("n", &self.n)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn core_applies_ops_sequentially_under_contention() {
        const THREADS: usize = 4;
        const PER: u64 = 2_000;
        let stats = Arc::new(SyncCounters::new());
        let core = Arc::new(CombiningCore::new(
            THREADS,
            ReduceState { f: 0.0, u: 0 },
            apply_reduce,
            Arc::clone(&stats),
        ));
        Team::new(THREADS).run(|_| {
            for _ in 0..PER {
                core.run(OP_UADD, 3);
            }
        });
        assert_eq!(core.run(OP_ULOAD, 0), THREADS as u64 * PER * 3);
        let p = stats.snapshot();
        assert_eq!(p.combine_ops, THREADS as u64 * PER + 1);
        assert!(p.combine_batches >= 1);
        // Combining must batch: far fewer lock handoffs than ops.
        assert!(
            p.combine_batches <= p.combine_ops,
            "batches {} ops {}",
            p.combine_batches,
            p.combine_ops
        );
        assert_eq!(p.lock_acquires, 0, "combining takes no sleeping locks");
    }

    #[test]
    fn combining_counter_partitions_range() {
        let stats = Arc::new(SyncCounters::new());
        let c = Arc::new(CombiningCounter::new(5..205, 4, stats));
        let seen = Mutex::new(HashSet::new());
        Team::new(4).run(|_| {
            let mut local = Vec::new();
            while let Some(i) = c.next() {
                local.push(i);
            }
            let mut set = seen.lock().unwrap();
            for i in local {
                assert!(set.insert(i), "index {i} handed out twice");
            }
        });
        let set = seen.into_inner().unwrap();
        assert_eq!(set.len(), 200);
        for i in 5..205 {
            assert!(set.contains(&i));
        }
    }

    #[test]
    fn combining_counter_chunks_reset_and_instrumentation() {
        let stats = Arc::new(SyncCounters::new());
        let c = CombiningCounter::new(0..100, 2, Arc::clone(&stats));
        let mut got = Vec::new();
        loop {
            let r = c.next_chunk(7);
            if r.is_empty() {
                break;
            }
            got.extend(r);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(c.next(), None);
        c.reset();
        assert_eq!(c.next(), Some(0));
        let p = stats.snapshot();
        // Every logical grab (exhausted polls included) is one getsub and
        // one combining request; reset/read traffic also counts as combine
        // ops but never as getsubs. 15 productive chunks + 1 empty poll +
        // 2 single grabs = 18.
        assert_eq!(p.getsub_calls, 18);
        assert!(p.combine_ops >= p.getsub_calls);
        assert_eq!(p.lock_acquires, 0);
    }

    #[test]
    fn combining_reducer_sums_exactly() {
        let stats = Arc::new(SyncCounters::new());
        let r: Arc<dyn ReduceF64> = Arc::new(CombiningReducer::new(4, Arc::clone(&stats)));
        Team::new(4).run(|ctx| {
            for i in 0..250 {
                r.add((ctx.tid * 250 + i) as f64);
            }
        });
        assert_eq!(r.load(), (0..1000).sum::<usize>() as f64);
        let p = stats.snapshot();
        assert_eq!(p.reduce_ops, 1000);
        assert_eq!(p.lock_acquires, 0);
    }

    #[test]
    fn combining_reducer_max_min_and_u64() {
        let stats = Arc::new(SyncCounters::new());
        let r = Arc::new(CombiningReducer::new(4, stats));
        let rf: Arc<dyn ReduceF64> = r.clone();
        rf.store(f64::NEG_INFINITY);
        Team::new(4).run(|ctx| {
            for i in 0..100 {
                rf.max((ctx.tid * 100 + i) as f64);
            }
        });
        assert_eq!(rf.load(), 399.0);
        rf.store(f64::INFINITY);
        rf.min(-3.0);
        rf.min(5.0);
        assert_eq!(rf.load(), -3.0);
        let ru: Arc<dyn ReduceU64> = r;
        Team::new(4).run(|_| {
            for _ in 0..100 {
                ru.add(3);
            }
        });
        assert_eq!(ru.load(), 1200);
    }

    #[test]
    fn combining_dispenser_hands_out_each_task_once() {
        let stats = Arc::new(SyncCounters::new());
        let d = Arc::new(CombiningDispenser::new(
            (0..30).collect::<Vec<u32>>(),
            3,
            Arc::clone(&stats),
        ));
        assert_eq!(d.len(), 30);
        assert!(!d.is_empty());
        let got = Mutex::new(Vec::new());
        Team::new(3).run(|_| {
            while let Some(t) = d.claim() {
                got.lock().unwrap().push(*t);
            }
        });
        let mut got = got.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..30).collect::<Vec<u32>>());
        assert_eq!(d.claimed(), 30);
        d.reset();
        assert_eq!(d.claim(), Some(&0));
        let p = stats.snapshot();
        assert!(p.queue_ops >= 30);
        assert_eq!(p.lock_acquires, 0);
    }

    #[test]
    fn combining_barrier_synchronizes_phases() {
        use std::sync::atomic::AtomicU64 as Au64;
        for n in [1, 2, 3, 5] {
            let stats = Arc::new(SyncCounters::new());
            let barrier = Arc::new(CombiningBarrier::new(n, Arc::clone(&stats)));
            const EPISODES: usize = 50;
            let phase = Au64::new(0);
            Team::new(n).run(|ctx| {
                for e in 0..EPISODES {
                    let before = phase.load(Ordering::SeqCst);
                    assert!(before >= e as u64, "phase ran behind");
                    barrier.wait(ctx.tid);
                    if ctx.tid == 0 {
                        phase.fetch_add(1, Ordering::SeqCst);
                    }
                    barrier.wait(ctx.tid);
                    let after = phase.load(Ordering::SeqCst);
                    assert!(after >= (e + 1) as u64, "released early: {e} {after}");
                }
            });
            assert_eq!(phase.load(Ordering::SeqCst), EPISODES as u64);
            assert_eq!(stats.snapshot().barrier_waits, (n * EPISODES * 2) as u64);
        }
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = CombiningBarrier::new(0, Arc::new(SyncCounters::new()));
    }

    #[test]
    fn oversubscribed_publishers_share_records() {
        // More threads than records: the claim probe must serialize them
        // without losing ops.
        let stats = Arc::new(SyncCounters::new());
        let core = Arc::new(CombiningCore::new(
            2,
            ReduceState { f: 0.0, u: 0 },
            apply_reduce,
            stats,
        ));
        assert_eq!(core.capacity(), 2);
        Team::new(5).run(|_| {
            for _ in 0..200 {
                core.run(OP_UADD, 1);
            }
        });
        assert_eq!(core.run(OP_ULOAD, 0), 1000);
    }
}
