//! Property-based tests for the synchronization primitives.
//!
//! Two equivalent harnesses cover the same invariants:
//! * with `--features proptest` (requires the registry dependency to be
//!   re-enabled in `Cargo.toml`), the `proptest`-driven version runs with
//!   shrinking;
//! * by default, a pure-std fallback drives each property with seeded
//!   [`SmallRng`](splash4_parmacs::SmallRng) cases so the invariants stay in
//!   tier-1 without any external dependency.

use splash4_parmacs::{
    chunk_range, AtomicCounter, AtomicF64, AtomicReducer, Barrier, CondvarBarrier, IndexCounter,
    LockedCounter, LockedQueue, LockedReducer, ReduceF64, SenseBarrier, SyncCounters, TaskQueue,
    Team, TreeBarrier, TreiberStack,
};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn check_chunk_range_partitions(total: usize, n: usize) {
    let mut seen = 0usize;
    let mut last_end = 0usize;
    for tid in 0..n {
        let r = chunk_range(total, tid, n);
        assert_eq!(r.start, last_end, "chunks must be contiguous");
        last_end = r.end;
        seen += r.len();
        assert!(r.len() <= total / n + 1);
    }
    assert_eq!(seen, total);
    assert_eq!(last_end, total);
}

fn check_counter_hands_out_each_index_once(start: usize, len: usize, threads: usize, atomic: bool) {
    let stats = Arc::new(SyncCounters::new());
    let range = start..start + len;
    let counter: Arc<dyn IndexCounter> = if atomic {
        Arc::new(AtomicCounter::new(range.clone(), stats))
    } else {
        Arc::new(LockedCounter::new(range.clone(), stats))
    };
    let seen = Mutex::new(HashSet::new());
    Team::new(threads).run(|_| {
        let mut local = Vec::new();
        while let Some(i) = counter.next() {
            local.push(i);
        }
        let mut s = seen.lock().unwrap();
        for i in local {
            assert!(s.insert(i), "duplicate index {i}");
        }
    });
    let s = seen.into_inner().unwrap();
    assert_eq!(s.len(), len);
    for i in range {
        assert!(s.contains(&i));
    }
}

fn check_reducer_sums_exactly(per: usize, threads: usize, atomic: bool) {
    let stats = Arc::new(SyncCounters::new());
    let red: Arc<dyn ReduceF64> = if atomic {
        Arc::new(AtomicReducer::new(stats))
    } else {
        Arc::new(LockedReducer::new(stats))
    };
    Team::new(threads).run(|ctx| {
        for i in 0..per {
            red.add((ctx.tid * per + i) as f64);
        }
    });
    let want: usize = (0..threads * per).sum();
    assert_eq!(red.load(), want as f64);
}

fn check_atomic_f64_adds_linearize(values: &[i32], threads: usize) {
    let stats = Arc::new(SyncCounters::new());
    let cell = AtomicF64::new(0.0, stats);
    let chunk = values.len().div_ceil(threads);
    Team::new(threads).run(|ctx| {
        let lo = (ctx.tid * chunk).min(values.len());
        let hi = ((ctx.tid + 1) * chunk).min(values.len());
        for &v in &values[lo..hi] {
            cell.add(v as f64);
        }
    });
    let want: i64 = values.iter().map(|&v| i64::from(v)).sum();
    assert_eq!(cell.load(), want as f64);
}

fn check_queue_preserves_multiset(tasks: &[u32], threads: usize, treiber: bool) {
    let stats = Arc::new(SyncCounters::new());
    let q: Arc<dyn TaskQueue<u32>> = if treiber {
        Arc::new(TreiberStack::new(stats))
    } else {
        Arc::new(LockedQueue::new(stats))
    };
    for &t in tasks {
        q.push(t);
    }
    let drained = Mutex::new(Vec::new());
    Team::new(threads).run(|_| {
        let mut local = Vec::new();
        while let Some(v) = q.pop() {
            local.push(v);
        }
        drained.lock().unwrap().extend(local);
    });
    let mut got = drained.into_inner().unwrap();
    let mut want = tasks.to_vec();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want);
}

fn check_barrier_never_releases_early(threads: usize, episodes: usize, which: u8) {
    let stats = Arc::new(SyncCounters::new());
    let barrier: Arc<dyn Barrier> = match which {
        0 => Arc::new(CondvarBarrier::new(threads, stats)),
        1 => Arc::new(SenseBarrier::new(threads, stats)),
        _ => Arc::new(TreeBarrier::new(threads, stats)),
    };
    let arrived = AtomicU64::new(0);
    Team::new(threads).run(|ctx| {
        for e in 0..episodes {
            arrived.fetch_add(1, Ordering::SeqCst);
            barrier.wait(ctx.tid);
            // After the barrier, every thread must have arrived e+1 times.
            let total = arrived.load(Ordering::SeqCst);
            assert!(
                total >= ((e + 1) * threads) as u64,
                "released with only {total} arrivals at episode {e}"
            );
            barrier.wait(ctx.tid);
        }
    });
}

#[cfg(not(feature = "proptest"))]
mod std_fallback {
    use super::*;
    use splash4_parmacs::SmallRng;

    const CASES: usize = 16;

    #[test]
    fn chunk_range_partitions_any_total() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE01);
        for _ in 0..CASES {
            check_chunk_range_partitions(rng.gen_range(0usize..10_000), rng.gen_range(1usize..64));
        }
    }

    #[test]
    fn counters_hand_out_each_index_once() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE02);
        for _ in 0..CASES {
            check_counter_hands_out_each_index_once(
                rng.gen_range(0usize..100),
                rng.gen_range(0usize..400),
                rng.gen_range(1usize..5),
                rng.gen::<bool>(),
            );
        }
    }

    #[test]
    fn reducers_sum_exactly_for_integer_values() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE03);
        for _ in 0..CASES {
            check_reducer_sums_exactly(
                rng.gen_range(1usize..200),
                rng.gen_range(1usize..5),
                rng.gen::<bool>(),
            );
        }
    }

    #[test]
    fn atomic_f64_fetch_update_is_linearizable_for_adds() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE04);
        for _ in 0..CASES {
            let values: Vec<i32> = (0..rng.gen_range(1usize..200))
                .map(|_| rng.gen_range(0u32..2000) as i32 - 1000)
                .collect();
            check_atomic_f64_adds_linearize(&values, rng.gen_range(1usize..5));
        }
    }

    #[test]
    fn queues_preserve_the_task_multiset() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE05);
        for _ in 0..CASES {
            let tasks: Vec<u32> = (0..rng.gen_range(0usize..300))
                .map(|_| rng.gen::<u32>())
                .collect();
            check_queue_preserves_multiset(&tasks, rng.gen_range(1usize..4), rng.gen::<bool>());
        }
    }

    #[test]
    fn barriers_never_release_early() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE06);
        for _ in 0..CASES {
            check_barrier_never_releases_early(
                rng.gen_range(1usize..6),
                rng.gen_range(1usize..20),
                rng.gen_range(0u32..3) as u8,
            );
        }
    }
}

#[cfg(feature = "proptest")]
mod proptest_suite {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn chunk_range_partitions_any_total(total in 0usize..10_000, n in 1usize..64) {
            check_chunk_range_partitions(total, n);
        }

        #[test]
        fn counters_hand_out_each_index_once(
            start in 0usize..100,
            len in 0usize..400,
            threads in 1usize..5,
            atomic in any::<bool>(),
        ) {
            check_counter_hands_out_each_index_once(start, len, threads, atomic);
        }

        #[test]
        fn reducers_sum_exactly_for_integer_values(
            per in 1usize..200,
            threads in 1usize..5,
            atomic in any::<bool>(),
        ) {
            check_reducer_sums_exactly(per, threads, atomic);
        }

        #[test]
        fn atomic_f64_fetch_update_is_linearizable_for_adds(
            values in prop::collection::vec(-1000i32..1000, 1..200),
            threads in 1usize..5,
        ) {
            check_atomic_f64_adds_linearize(&values, threads);
        }

        #[test]
        fn queues_preserve_the_task_multiset(
            tasks in prop::collection::vec(any::<u32>(), 0..300),
            threads in 1usize..4,
            treiber in any::<bool>(),
        ) {
            check_queue_preserves_multiset(&tasks, threads, treiber);
        }

        #[test]
        fn barriers_never_release_early(
            threads in 1usize..6,
            episodes in 1usize..20,
            which in 0u8..3,
        ) {
            check_barrier_never_releases_early(threads, episodes, which);
        }
    }
}
