//! Dynamic task pool: the suite-facing seam over the reclaiming structures.
//!
//! [`TaskPool`] implements the suite's
//! [`TaskQueue`](splash4_parmacs::TaskQueue) trait, so the task-parallel
//! kernels can swap their fixed-capacity index pools for a truly dynamic
//! pool by constructing one of these — producers are unbounded and popped
//! task nodes are recycled through a [`Reclaimer`] instead of accumulating
//! on a retired list.

use crate::elimination::EliminationStack;
use crate::epoch::EpochReclaimer;
use crate::hazard::HazardReclaimer;
use crate::ms_queue::MsQueue;
use crate::{ReclaimStats, Reclaimer};
use splash4_parmacs::{SyncCounters, TaskQueue};
use std::fmt;
use std::sync::Arc;

/// Which reclamation back-end a [`TaskPool`] recycles its nodes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimKind {
    /// Epoch-based reclamation: near-zero per-operation overhead, but one
    /// stalled in-region thread delays every free.
    Epoch,
    /// Hazard pointers: a store+barrier per pointer dereference, but the
    /// unreclaimed backlog is bounded regardless of stalled threads.
    Hazard,
}

/// Task ordering discipline of a [`TaskPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolShape {
    /// FIFO via the Michael-Scott queue — fair, scan-friendly order.
    Fifo,
    /// LIFO via the elimination-backoff stack — locality-friendly order,
    /// with push/pop pairs eliminating under contention.
    Lifo,
}

enum Backend<T: Send> {
    Fifo(MsQueue<T>),
    Lifo(EliminationStack<T>),
}

/// A dynamic, unbounded task pool with safe memory reclamation.
pub struct TaskPool<T: Send> {
    backend: Backend<T>,
    reclaimer: Arc<dyn Reclaimer>,
}

impl<T: Send> TaskPool<T> {
    /// Pool of the given `shape` recycling nodes through `kind`, sized for
    /// `threads` concurrent workers, reporting into `stats`.
    pub fn new(
        shape: PoolShape,
        kind: ReclaimKind,
        threads: usize,
        stats: Arc<SyncCounters>,
    ) -> TaskPool<T> {
        let reclaimer: Arc<dyn Reclaimer> = match kind {
            ReclaimKind::Epoch => Arc::new(EpochReclaimer::new(threads, stats.clone())),
            ReclaimKind::Hazard => Arc::new(HazardReclaimer::new(threads, stats.clone())),
        };
        let backend = match shape {
            PoolShape::Fifo => Backend::Fifo(MsQueue::new(reclaimer.clone(), stats)),
            PoolShape::Lifo => Backend::Lifo(EliminationStack::new(reclaimer.clone(), stats)),
        };
        TaskPool { backend, reclaimer }
    }

    /// Add a task; never blocks, never fails (the pool is unbounded).
    pub fn push(&self, task: T) {
        match &self.backend {
            Backend::Fifo(q) => q.push(task),
            Backend::Lifo(s) => s.push(task),
        }
    }

    /// Take a task; `None` when the pool is observed empty.
    pub fn pop(&self) -> Option<T> {
        match &self.backend {
            Backend::Fifo(q) => q.pop(),
            Backend::Lifo(s) => s.pop(),
        }
    }

    /// Approximate number of pending tasks (exact at quiescence).
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Fifo(q) => q.len(),
            Backend::Lifo(s) => s.len(),
        }
    }

    /// Whether the pool is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Destroy every retired node the reclamation protocol can prove
    /// unreachable (everything, when callers are quiescent).
    pub fn flush(&self) {
        self.reclaimer.flush();
    }

    /// Exact reclamation tallies for this pool's reclaimer.
    pub fn reclaim_stats(&self) -> ReclaimStats {
        self.reclaimer.reclaim_stats()
    }
}

impl<T: Send> TaskQueue<T> for TaskPool<T> {
    fn push(&self, task: T) {
        TaskPool::push(self, task)
    }

    fn pop(&self) -> Option<T> {
        TaskPool::pop(self)
    }

    fn len(&self) -> usize {
        TaskPool::len(self)
    }
}

impl<T: Send> fmt::Debug for TaskPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shape = match &self.backend {
            Backend::Fifo(_) => PoolShape::Fifo,
            Backend::Lifo(_) => PoolShape::Lifo,
        };
        f.debug_struct("TaskPool")
            .field("shape", &shape)
            .field("len", &self.len())
            .field("reclaimer", &self.reclaimer)
            .finish()
    }
}
