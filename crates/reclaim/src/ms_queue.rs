//! Michael-Scott lock-free FIFO queue with real node reclamation.
//!
//! The 1996 two-pointer algorithm: a dummy node anchors the queue; `push`
//! links after the last node with a CAS on `tail.next` (the linearization
//! point) and then helps swing `tail`; `pop` advances `head` with a CAS,
//! takes the value out of the *new* dummy, and retires the old one.
//!
//! Reclamation contract (per [`Reclaimer`]):
//! - every traversal runs inside an `enter`/`exit` region;
//! - `head`/`tail` reads publish hazard 0 and re-validate before
//!   dereferencing; the dequeue's `next` read publishes hazard 1 so the
//!   value can be taken out of the new dummy even if another thread pops
//!   (and retires) it concurrently;
//! - the popped dummy is retired, never freed inline.
//!
//! Orderings come from [`MsQueueSpec`]; the `splash4-check` shadow replica
//! (experiment `R1-reclaim`) model-checks the same state machine and the
//! seeded lost-link-CAS mutant.

use crate::node::Node;
use crate::Reclaimer;
use splash4_parmacs::{CachePadded, Counter, MsQueueSpec, SyncCounters, TaskQueue, TraceEvent};
use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Michael-Scott FIFO queue (see the module docs).
pub struct MsQueue<T> {
    head: CachePadded<AtomicPtr<Node<T>>>,
    tail: CachePadded<AtomicPtr<Node<T>>>,
    /// Approximate length: incremented before a push links its node,
    /// decremented after a successful pop. Exact at quiescence.
    len: CachePadded<AtomicUsize>,
    reclaimer: Arc<dyn Reclaimer>,
    spec: MsQueueSpec,
    stats: Arc<SyncCounters>,
}

// SAFETY: the queue hands each value from one pushing thread to exactly one
// popping thread (`T: Send`); all shared-node management follows the
// reclamation protocol.
unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T: Send> MsQueue<T> {
    /// Empty queue whose nodes are reclaimed through `reclaimer`, shipping
    /// [`MsQueueSpec::SPLASH4`] orderings and reporting into `stats`.
    pub fn new(reclaimer: Arc<dyn Reclaimer>, stats: Arc<SyncCounters>) -> MsQueue<T> {
        MsQueue::with_spec(reclaimer, stats, MsQueueSpec::SPLASH4)
    }

    /// Queue with explicit orderings (ordering-sensitivity tests).
    pub fn with_spec(
        reclaimer: Arc<dyn Reclaimer>,
        stats: Arc<SyncCounters>,
        spec: MsQueueSpec,
    ) -> MsQueue<T> {
        let dummy = Node::boxed(None);
        MsQueue {
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            len: CachePadded::new(AtomicUsize::new(0)),
            reclaimer,
            spec,
            stats,
        }
    }

    /// Enqueue `value` at the tail. Never blocks, never fails.
    pub fn push(&self, value: T) {
        self.stats.bump(Counter::QueueOps);
        self.stats.trace(TraceEvent::Enqueue);
        let s = self.spec;
        let node = Node::boxed(Some(value));
        // Count before linking: the increment happens-before the link CAS,
        // which happens-before any pop of this node and its decrement, so
        // the counter never underflows.
        self.len.fetch_add(1, Ordering::Relaxed);
        let slot = self.reclaimer.enter();
        loop {
            let tail = self.tail.load(s.ptr_load);
            // Publish-then-revalidate: only a tail still installed after
            // the hazard store is safe to dereference.
            self.reclaimer.protect(slot, 0, tail.cast());
            if self.tail.load(s.ptr_load) != tail {
                continue;
            }
            // SAFETY: `tail` is hazard-protected and re-validated above.
            let next = unsafe { (*tail).next.load(s.next_load) };
            if !next.is_null() {
                // Tail lags behind the real last node: help swing it.
                self.stats.bump(Counter::AtomicRmws);
                if self
                    .tail
                    .compare_exchange(tail, next, s.tail_swing_ok, s.tail_swing_fail)
                    .is_err()
                {
                    self.stats.bump(Counter::CasFailures);
                }
                continue;
            }
            // Linearization point: link the new node after the last one.
            self.stats.bump(Counter::AtomicRmws);
            // SAFETY: `tail` is still hazard-protected.
            let linked = unsafe {
                (*tail)
                    .next
                    .compare_exchange(ptr::null_mut(), node, s.link_cas_ok, s.link_cas_fail)
                    .is_ok()
            };
            if linked {
                // Best-effort tail swing; a failure means someone helped.
                self.stats.bump(Counter::AtomicRmws);
                if self
                    .tail
                    .compare_exchange(tail, node, s.tail_swing_ok, s.tail_swing_fail)
                    .is_err()
                {
                    self.stats.bump(Counter::CasFailures);
                }
                break;
            }
            self.stats.bump(Counter::CasFailures);
        }
        self.reclaimer.exit(slot);
    }

    /// Dequeue from the head; `None` when the queue is observed empty.
    pub fn pop(&self) -> Option<T> {
        self.stats.bump(Counter::QueueOps);
        self.stats.trace(TraceEvent::Dequeue);
        let s = self.spec;
        let slot = self.reclaimer.enter();
        let result = loop {
            let head = self.head.load(s.ptr_load);
            self.reclaimer.protect(slot, 0, head.cast());
            if self.head.load(s.ptr_load) != head {
                continue;
            }
            let tail = self.tail.load(s.ptr_load);
            // SAFETY: `head` is hazard-protected and re-validated above.
            let next = unsafe { (*head).next.load(s.next_load) };
            // Protect `next` too: after we win the head CAS, `next` becomes
            // the new dummy and a concurrent pop may retire it while we are
            // still reading its value.
            self.reclaimer.protect(slot, 1, next.cast());
            if self.head.load(s.ptr_load) != head {
                continue;
            }
            if next.is_null() {
                break None;
            }
            if head == tail {
                // Non-empty but tail lags: help swing, then retry.
                self.stats.bump(Counter::AtomicRmws);
                if self
                    .tail
                    .compare_exchange(tail, next, s.tail_swing_ok, s.tail_swing_fail)
                    .is_err()
                {
                    self.stats.bump(Counter::CasFailures);
                }
                continue;
            }
            // Linearization point: winning this CAS grants the unique right
            // to take `next`'s value and to retire `head`.
            self.stats.bump(Counter::AtomicRmws);
            if self
                .head
                .compare_exchange(head, next, s.head_cas_ok, s.head_cas_fail)
                .is_ok()
            {
                // SAFETY: unique take right from the CAS win; hazard 1
                // keeps `next` alive even if it is retired concurrently.
                let value = unsafe { Node::take_value(next) };
                self.len.fetch_sub(1, Ordering::Relaxed);
                // SAFETY: `head` is now unlinked and was reached by the
                // winning CAS alone; retired exactly once, its payload is
                // `None` (it was the dummy), so deferred drop is a no-op
                // beyond the box.
                unsafe {
                    self.reclaimer
                        .retire(slot, head.cast(), Node::<T>::drop_erased)
                };
                break value;
            }
            self.stats.bump(Counter::CasFailures);
        };
        self.reclaimer.exit(slot);
        result
    }

    /// Approximate number of queued values (exact at quiescence).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the queue is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Destroy every retired node the reclamation protocol can prove
    /// unreachable (everything, when callers are quiescent).
    pub fn flush(&self) {
        self.reclaimer.flush();
    }

    /// Exact reclamation tallies for this queue's reclaimer.
    pub fn reclaim_stats(&self) -> crate::ReclaimStats {
        self.reclaimer.reclaim_stats()
    }
}

impl<T: Send> TaskQueue<T> for MsQueue<T> {
    fn push(&self, task: T) {
        MsQueue::push(self, task)
    }

    fn pop(&self) -> Option<T> {
        MsQueue::pop(self)
    }

    fn len(&self) -> usize {
        MsQueue::len(self)
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the chain and free everything inline,
        // including the dummy. Values still queued drop here.
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // SAFETY: `&mut self` — no concurrent access; each node is
            // owned by the chain and freed once.
            let boxed = unsafe { Box::from_raw(p) };
            p = boxed.next.load(Ordering::Relaxed);
        }
    }
}

impl<T> fmt::Debug for MsQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsQueue")
            .field("len", &self.len.load(Ordering::Relaxed))
            .field("reclaimer", &self.reclaimer)
            .finish()
    }
}
