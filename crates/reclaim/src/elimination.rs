//! Elimination-backoff Treiber stack with real node reclamation.
//!
//! The base is the classic Treiber stack (orderings from [`TreiberSpec`],
//! the same table the suite's retire-list stack ships). On CAS failure —
//! the contention signal — operations visit an *exchange slot* instead of
//! hammering the head ([`EliminationSpec`] orderings):
//!
//! - a **pusher** installs its node into the slot (`install` CAS), waits a
//!   short window, then withdraws (`withdraw` CAS). A failed withdraw means
//!   a popper took the node: the pair eliminated, never touching the head.
//! - a **popper** that sees an offer publishes a hazard on it, re-validates
//!   the slot, and claims the node with the `take` CAS; the win grants the
//!   unique right to the value, after which the node is *retired* (never
//!   freed inline — a stale slot read elsewhere may still hold the
//!   pointer, and retire-not-free is exactly what makes that harmless).
//!
//! The pusher keeps a hazard on its own offered node for the whole
//! install/withdraw window, so under hazard-pointer reclamation the node
//! cannot be freed-and-reallocated into a colliding offer before the
//! withdraw CAS resolves the handshake.

use crate::node::Node;
use crate::Reclaimer;
use splash4_parmacs::{
    CachePadded, Counter, EliminationSpec, SyncCounters, TaskQueue, TraceEvent, TreiberSpec,
};
use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Spin iterations a pusher leaves its offer in the exchange slot.
const ELIM_WINDOW: usize = 64;

/// Elimination-backoff LIFO stack (see the module docs).
pub struct EliminationStack<T> {
    head: CachePadded<AtomicPtr<Node<T>>>,
    /// The exchange slot: null, or a pusher's offered node.
    slot: CachePadded<AtomicPtr<Node<T>>>,
    /// Approximate length: incremented before a push publishes, decremented
    /// after a successful pop. Exact at quiescence.
    len: CachePadded<AtomicUsize>,
    reclaimer: Arc<dyn Reclaimer>,
    spec: TreiberSpec,
    elim: EliminationSpec,
    stats: Arc<SyncCounters>,
}

// SAFETY: each value moves from one pushing thread to exactly one popping
// thread (`T: Send`); node lifetime follows the reclamation protocol.
unsafe impl<T: Send> Send for EliminationStack<T> {}
unsafe impl<T: Send> Sync for EliminationStack<T> {}

impl<T: Send> EliminationStack<T> {
    /// Empty stack whose nodes are reclaimed through `reclaimer`, shipping
    /// [`TreiberSpec::SPLASH4`] + [`EliminationSpec::SPLASH4`] orderings
    /// and reporting into `stats`.
    pub fn new(reclaimer: Arc<dyn Reclaimer>, stats: Arc<SyncCounters>) -> EliminationStack<T> {
        EliminationStack::with_spec(
            reclaimer,
            stats,
            TreiberSpec::SPLASH4,
            EliminationSpec::SPLASH4,
        )
    }

    /// Stack with explicit orderings (ordering-sensitivity tests).
    pub fn with_spec(
        reclaimer: Arc<dyn Reclaimer>,
        stats: Arc<SyncCounters>,
        spec: TreiberSpec,
        elim: EliminationSpec,
    ) -> EliminationStack<T> {
        EliminationStack {
            head: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            slot: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            len: CachePadded::new(AtomicUsize::new(0)),
            reclaimer,
            spec,
            elim,
            stats,
        }
    }

    /// Push `value`. Never blocks, never fails.
    pub fn push(&self, value: T) {
        self.stats.bump(Counter::QueueOps);
        self.stats.trace(TraceEvent::Enqueue);
        let s = self.spec;
        let node = Node::boxed(Some(value));
        // Count before publishing (either path): increment happens-before
        // the publishing CAS, which happens-before the matching pop's
        // decrement — no underflow.
        self.len.fetch_add(1, Ordering::Relaxed);
        let slot = self.reclaimer.enter();
        loop {
            let head = self.head.load(s.push_load);
            // The new node is unpublished: plain ordering suffices here,
            // the publishing CAS releases it.
            // SAFETY: `node` is owned by this thread until published.
            unsafe { (*node).next.store(head, Ordering::Relaxed) };
            self.stats.bump(Counter::AtomicRmws);
            if self
                .head
                .compare_exchange(head, node, s.push_cas_ok, s.push_cas_fail)
                .is_ok()
            {
                break;
            }
            self.stats.bump(Counter::CasFailures);
            if self.try_eliminate_push(slot, node) {
                break;
            }
        }
        self.reclaimer.exit(slot);
    }

    /// Pop the most recent value; `None` when the stack is observed empty.
    pub fn pop(&self) -> Option<T> {
        self.stats.bump(Counter::QueueOps);
        self.stats.trace(TraceEvent::Dequeue);
        let s = self.spec;
        let slot = self.reclaimer.enter();
        let result = loop {
            let head = self.head.load(s.pop_load);
            if head.is_null() {
                // Empty stack — but a pending elimination offer is
                // logically pushed; taking it is linearizable.
                break self.try_eliminate_pop(slot);
            }
            // Publish-then-revalidate before dereferencing `head`.
            self.reclaimer.protect(slot, 0, head.cast());
            if self.head.load(s.pop_load) != head {
                continue;
            }
            // SAFETY: `head` is hazard-protected and re-validated above.
            let next = unsafe { (*head).next.load(Ordering::Relaxed) };
            self.stats.bump(Counter::AtomicRmws);
            if self
                .head
                .compare_exchange(head, next, s.pop_cas_ok, s.pop_cas_fail)
                .is_ok()
            {
                // SAFETY: unique take right from the unlinking CAS win.
                let value = unsafe { Node::take_value(head) };
                self.len.fetch_sub(1, Ordering::Relaxed);
                // SAFETY: unlinked by the winning CAS, retired once.
                unsafe {
                    self.reclaimer
                        .retire(slot, head.cast(), Node::<T>::drop_erased)
                };
                break value;
            }
            self.stats.bump(Counter::CasFailures);
            if let Some(value) = self.try_eliminate_pop(slot) {
                break Some(value);
            }
        };
        self.reclaimer.exit(slot);
        result
    }

    /// Offer `node` in the exchange slot for one window; true on handoff.
    fn try_eliminate_push(&self, slot: usize, node: *mut Node<T>) -> bool {
        let e = self.elim;
        // Keep a hazard on our own offer: a popper may take and retire it,
        // and the withdraw CAS below must not race a free-and-realloc of
        // this address (epoch back-ends cover this with the open region).
        self.reclaimer.protect(slot, 0, node.cast());
        self.stats.bump(Counter::AtomicRmws);
        if self
            .slot
            .compare_exchange(ptr::null_mut(), node, e.install_cas_ok, e.install_cas_fail)
            .is_err()
        {
            // Slot busy with another pusher's offer: no pairing possible.
            self.stats.bump(Counter::CasFailures);
            self.reclaimer.protect(slot, 0, ptr::null_mut());
            return false;
        }
        for _ in 0..ELIM_WINDOW {
            if self.slot.load(e.slot_load) != node {
                // Taken mid-window; the withdraw below just confirms.
                break;
            }
            std::hint::spin_loop();
        }
        self.stats.bump(Counter::AtomicRmws);
        let withdrawn = self
            .slot
            .compare_exchange(
                node,
                ptr::null_mut(),
                e.withdraw_cas_ok,
                e.withdraw_cas_fail,
            )
            .is_ok();
        self.reclaimer.protect(slot, 0, ptr::null_mut());
        if withdrawn {
            // Nobody bit: we still own the node; retry the main stack.
            self.stats.bump(Counter::CasFailures);
            false
        } else {
            // A popper claimed the offer (and owns the node now): the pair
            // eliminated.
            true
        }
    }

    /// Claim a pending exchange offer, if any.
    fn try_eliminate_pop(&self, slot: usize) -> Option<T> {
        let e = self.elim;
        let offer = self.slot.load(e.slot_load);
        if offer.is_null() {
            return None;
        }
        // Publish-then-revalidate: only an offer still installed after the
        // hazard store may be claimed (retire-not-free then keeps a stale
        // pointer harmless even if the revalidation races a withdraw).
        self.reclaimer.protect(slot, 1, offer.cast());
        if self.slot.load(e.slot_load) != offer {
            self.reclaimer.protect(slot, 1, ptr::null_mut());
            return None;
        }
        self.stats.bump(Counter::AtomicRmws);
        let taken = self
            .slot
            .compare_exchange(offer, ptr::null_mut(), e.take_cas_ok, e.take_cas_fail)
            .is_ok();
        let value = if taken {
            // SAFETY: winning the take CAS grants the unique right to the
            // offered value; the hazard (or open epoch region) keeps the
            // node alive while we read it.
            let value = unsafe { Node::take_value(offer) };
            self.len.fetch_sub(1, Ordering::Relaxed);
            // SAFETY: the offer is now unlinked from the slot and the
            // owning pusher saw (or will see) its withdraw fail — this
            // claimant alone retires it.
            unsafe {
                self.reclaimer
                    .retire(slot, offer.cast(), Node::<T>::drop_erased)
            };
            value
        } else {
            self.stats.bump(Counter::CasFailures);
            None
        };
        self.reclaimer.protect(slot, 1, ptr::null_mut());
        value
    }

    /// Approximate number of stacked values (exact at quiescence).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the stack is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Destroy every retired node the reclamation protocol can prove
    /// unreachable (everything, when callers are quiescent).
    pub fn flush(&self) {
        self.reclaimer.flush();
    }

    /// Exact reclamation tallies for this stack's reclaimer.
    pub fn reclaim_stats(&self) -> crate::ReclaimStats {
        self.reclaimer.reclaim_stats()
    }
}

impl<T: Send> TaskQueue<T> for EliminationStack<T> {
    fn push(&self, task: T) {
        EliminationStack::push(self, task)
    }

    fn pop(&self) -> Option<T> {
        EliminationStack::pop(self)
    }

    fn len(&self) -> usize {
        EliminationStack::len(self)
    }
}

impl<T> Drop for EliminationStack<T> {
    fn drop(&mut self) {
        // Exclusive access: free the chain and any unpaired offer inline.
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // SAFETY: `&mut self` — each node owned by the chain, freed once.
            let boxed = unsafe { Box::from_raw(p) };
            p = boxed.next.load(Ordering::Relaxed);
        }
        let offer = *self.slot.get_mut();
        if !offer.is_null() {
            // SAFETY: an offer still in the slot is owned by the stack now
            // that no pusher thread can be live (`&mut self`).
            drop(unsafe { Box::from_raw(offer) });
        }
    }
}

impl<T> fmt::Debug for EliminationStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EliminationStack")
            .field("len", &self.len.load(Ordering::Relaxed))
            .field("reclaimer", &self.reclaimer)
            .finish()
    }
}
