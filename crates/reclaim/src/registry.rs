//! Per-thread slot leasing shared by both reclaimers.
//!
//! A reclaimer owns a fixed array of per-thread records (epoch slots or
//! hazard-pointer rows). OS threads lease a record on first use and cache
//! the lease in a thread-local; when the thread exits, the lease's `Drop`
//! vacates the record (clearing protocol state) so a later thread can
//! reuse it. `splash4_parmacs::current_tid` is *not* usable here: it is a
//! team index that is 0 outside any team and repeats across teams, while
//! hazard-pointer soundness requires every concurrently live thread to own
//! a distinct record.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// Process-wide allocator of registry identities (one per reclaimer).
static NEXT_REGISTRY_ID: AtomicUsize = AtomicUsize::new(0);

/// A fresh identity for a reclaimer's slot registry.
pub(crate) fn new_registry_id() -> usize {
    NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed)
}

/// Implemented by a reclaimer's shared state: clears a slot's protocol
/// residue (hazards, epoch announcement) and marks it leasable again.
pub(crate) trait SlotHolder: Send + Sync {
    fn vacate(&self, slot: usize);
}

struct Lease {
    registry_id: usize,
    slot: usize,
    holder: Weak<dyn SlotHolder>,
}

impl Drop for Lease {
    fn drop(&mut self) {
        // The reclaimer may have been dropped before the thread exits; a
        // dead holder has already reclaimed everything, nothing to vacate.
        if let Some(h) = self.holder.upgrade() {
            h.vacate(self.slot);
        }
    }
}

thread_local! {
    /// This thread's live leases, one per reclaimer it has used. The list
    /// stays tiny (a handful of pools per process), so linear scans beat a
    /// map.
    static LEASES: RefCell<Vec<Lease>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's slot in `holder`'s registry, claiming a free one
/// via `in_use` on first use.
///
/// # Panics
/// Panics when more threads are concurrently live than the registry has
/// slots.
pub(crate) fn thread_slot(
    registry_id: usize,
    holder: &Arc<dyn SlotHolder>,
    in_use: &[AtomicBool],
) -> usize {
    LEASES.with(|leases| {
        let mut leases = leases.borrow_mut();
        if let Some(lease) = leases.iter().find(|l| l.registry_id == registry_id) {
            return lease.slot;
        }
        let slot = claim(in_use);
        leases.push(Lease {
            registry_id,
            slot,
            holder: Arc::downgrade(holder),
        });
        slot
    })
}

fn claim(in_use: &[AtomicBool]) -> usize {
    // A full registry is usually transient: `std::thread::scope` unblocks
    // as soon as the scoped closures return, *before* the exiting threads
    // run their TLS destructors — so a fresh team can race the previous
    // team's leases mid-vacate. Yield until those destructors land; only a
    // genuinely oversubscribed registry panics.
    const EXHAUSTED_YIELDS: usize = 100_000;
    for attempt in 0..EXHAUSTED_YIELDS {
        for (i, flag) in in_use.iter().enumerate() {
            if flag
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return i;
            }
        }
        if attempt + 1 == EXHAUSTED_YIELDS {
            break;
        }
        std::thread::yield_now();
    }
    panic!(
        "reclaimer slot registry exhausted: more than {} concurrently live threads",
        in_use.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Debug)]
    struct Recorder {
        in_use: Vec<AtomicBool>,
        vacated: Mutex<Vec<usize>>,
    }

    impl SlotHolder for Recorder {
        fn vacate(&self, slot: usize) {
            self.in_use[slot].store(false, Ordering::Release);
            self.vacated.lock().unwrap().push(slot);
        }
    }

    fn recorder(slots: usize) -> Arc<Recorder> {
        Arc::new(Recorder {
            in_use: (0..slots).map(|_| AtomicBool::new(false)).collect(),
            vacated: Mutex::new(Vec::new()),
        })
    }

    #[test]
    fn same_thread_reuses_its_lease() {
        let r = recorder(4);
        let id = new_registry_id();
        let holder: Arc<dyn SlotHolder> = r.clone();
        let a = thread_slot(id, &holder, &r.in_use);
        let b = thread_slot(id, &holder, &r.in_use);
        assert_eq!(a, b);
        assert!(r.in_use[a].load(Ordering::Acquire));
    }

    #[test]
    fn concurrent_threads_get_distinct_slots_and_vacate_on_exit() {
        let r = recorder(8);
        let id = new_registry_id();
        // Hold all 8 leases simultaneously (the barrier keeps every thread
        // alive until the last has claimed); only then is distinctness
        // guaranteed — an exited thread's slot is legitimately reusable.
        let gate = Arc::new(std::sync::Barrier::new(8));
        let slots: Vec<usize> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let r = r.clone();
                    let gate = gate.clone();
                    s.spawn(move || {
                        let holder: Arc<dyn SlotHolder> = r.clone();
                        let slot = thread_slot(id, &holder, &r.in_use);
                        gate.wait();
                        slot
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "live threads must own distinct slots");
        // All threads exited: every slot was vacated and is leasable again.
        assert_eq!(r.vacated.lock().unwrap().len(), 8);
        assert!(r.in_use.iter().all(|f| !f.load(Ordering::Acquire)));
    }

    #[test]
    fn two_registries_on_one_thread_do_not_collide() {
        let r1 = recorder(2);
        let r2 = recorder(2);
        let (id1, id2) = (new_registry_id(), new_registry_id());
        let h1: Arc<dyn SlotHolder> = r1.clone();
        let h2: Arc<dyn SlotHolder> = r2.clone();
        let s1 = thread_slot(id1, &h1, &r1.in_use);
        let s2 = thread_slot(id2, &h2, &r2.in_use);
        assert!(r1.in_use[s1].load(Ordering::Acquire));
        assert!(r2.in_use[s2].load(Ordering::Acquire));
        assert_eq!(thread_slot(id1, &h1, &r1.in_use), s1);
    }
}
