//! Epoch-based reclamation.
//!
//! The classic three-phase scheme: every thread announces the global epoch
//! in its own padded slot while inside a protected region and a quiescent
//! sentinel outside it; retired nodes land in the retiring slot's
//! defer-destroy bag tagged with the epoch of retirement; when a bag grows
//! past the retire threshold the owner scans all announcements and, if
//! every active thread has caught up to the global epoch, advances it.
//! A node retired in epoch `e` is destroyed once the global epoch reaches
//! `e + 2`: two advances prove every thread pinned during `e` has left its
//! protected region at least once, so no reference can survive.
//!
//! All orderings come from [`EpochSpec`]; the `splash4-check` shadow
//! replica (`R1-reclaim`) explores the same state machine and catches the
//! premature-free and never-retire mutants.

use crate::registry::{self, SlotHolder};
use crate::{ReclaimStats, Reclaimer, Retired, StatCells};
use splash4_parmacs::{CachePadded, Counter, EpochSpec, SyncCounters};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Announcement value of a thread outside any protected region.
const QUIESCENT: usize = usize::MAX;

/// Retire-bag length that triggers a collection attempt.
const RETIRE_THRESHOLD: usize = 64;

/// One thread's record: the epoch announcement plus the defer-destroy bag.
struct EpochSlot {
    announce: CachePadded<AtomicUsize>,
    /// `std::sync::Mutex`, deliberately uninstrumented: reclamation
    /// bookkeeping must not show up as `lock_acquires` in kernel profiles.
    /// Contention is nil — only the owning thread pushes; other threads
    /// touch foreign bags only in [`EpochReclaimer::flush`].
    bag: Mutex<Vec<Retired>>,
}

struct Inner {
    global: CachePadded<AtomicUsize>,
    slots: Box<[EpochSlot]>,
    in_use: Box<[AtomicBool]>,
    spec: EpochSpec,
    stats: Arc<SyncCounters>,
    local: StatCells,
}

impl SlotHolder for Inner {
    fn vacate(&self, slot: usize) {
        // The bag stays: a later thread leasing this slot (or a flush)
        // inherits and eventually destroys its contents.
        self.slots[slot]
            .announce
            .store(QUIESCENT, Ordering::Release);
        self.in_use[slot].store(false, Ordering::Release);
    }
}

/// Epoch-based reclaimer (see the module docs for the protocol).
pub struct EpochReclaimer {
    registry_id: usize,
    inner: Arc<Inner>,
    holder: Arc<dyn SlotHolder>,
}

impl EpochReclaimer {
    /// Reclaimer with room for `capacity` concurrently live threads,
    /// shipping [`EpochSpec::SPLASH4`] orderings and reporting into
    /// `stats`.
    pub fn new(capacity: usize, stats: Arc<SyncCounters>) -> EpochReclaimer {
        EpochReclaimer::with_spec(capacity, stats, EpochSpec::SPLASH4)
    }

    /// Reclaimer with explicit orderings (ordering-sensitivity tests).
    pub fn with_spec(capacity: usize, stats: Arc<SyncCounters>, spec: EpochSpec) -> EpochReclaimer {
        let capacity = capacity.max(1);
        let inner = Arc::new(Inner {
            global: CachePadded::new(AtomicUsize::new(0)),
            slots: (0..capacity)
                .map(|_| EpochSlot {
                    announce: CachePadded::new(AtomicUsize::new(QUIESCENT)),
                    bag: Mutex::new(Vec::new()),
                })
                .collect(),
            in_use: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
            spec,
            stats,
            local: StatCells::default(),
        });
        EpochReclaimer {
            registry_id: registry::new_registry_id(),
            holder: inner.clone(),
            inner,
        }
    }

    fn slot(&self) -> usize {
        registry::thread_slot(self.registry_id, &self.holder, &self.inner.in_use)
    }

    /// Try to advance the global epoch; returns the (possibly new) epoch.
    ///
    /// Advance is legal only when every *active* announcement equals the
    /// current global epoch — a thread still announcing an older epoch may
    /// hold references retired under it.
    fn try_advance(&self) -> usize {
        let s = self.inner.spec;
        let e = self.inner.global.load(s.global_load);
        for slot in self.inner.slots.iter() {
            let a = slot.announce.load(s.scan_load);
            if a != QUIESCENT && a != e {
                return e;
            }
        }
        match self
            .inner
            .global
            .compare_exchange(e, e + 1, s.advance_cas_ok, s.advance_cas_fail)
        {
            Ok(_) => e + 1,
            Err(now) => now,
        }
    }

    /// Destroy `slot`'s bag entries old enough for the two-epoch rule.
    fn collect(&self, slot: usize) {
        self.inner.local.scans.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.bump(Counter::ReclaimScans);
        let global = self.try_advance();
        let mut bag = self.inner.slots[slot]
            .bag
            .lock()
            .expect("epoch bag poisoned");
        let mut freed = 0u64;
        bag.retain(|r| {
            if r.epoch.saturating_add(2) <= global {
                // SAFETY: retired under epoch `r.epoch`; the global epoch
                // has advanced twice since, so every thread pinned at
                // retirement has since quiesced — no reference survives.
                unsafe { std::ptr::read(r).free() };
                freed += 1;
                false
            } else {
                true
            }
        });
        drop(bag);
        if freed > 0 {
            self.inner.local.frees.fetch_add(freed, Ordering::Relaxed);
            self.inner.stats.add(Counter::ReclaimFrees, freed);
        }
    }
}

impl Reclaimer for EpochReclaimer {
    fn enter(&self) -> usize {
        let slot = self.slot();
        let s = self.inner.spec;
        let announce = &self.inner.slots[slot].announce;
        // Announce-and-revalidate: settle only once the announced epoch is
        // the current global epoch, so the collector's scan can never
        // observe this thread behind an epoch it missed.
        loop {
            let e = self.inner.global.load(s.global_load);
            announce.store(e, s.announce_store);
            if self.inner.global.load(s.global_load) == e {
                return slot;
            }
        }
    }

    fn exit(&self, slot: usize) {
        let s = self.inner.spec;
        self.inner.slots[slot]
            .announce
            .store(QUIESCENT, s.quiesce_store);
    }

    fn protect(&self, _slot: usize, _hp: usize, _ptr: *mut u8) {
        // Epoch reclamation protects whole regions, not single pointers.
    }

    unsafe fn retire(&self, slot: usize, ptr: *mut u8, drop_fn: unsafe fn(*mut u8)) {
        let epoch = self.inner.global.load(self.inner.spec.global_load);
        self.inner.local.retires.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.bump(Counter::ReclaimRetires);
        let pending = {
            let mut bag = self.inner.slots[slot]
                .bag
                .lock()
                .expect("epoch bag poisoned");
            bag.push(Retired {
                ptr,
                drop_fn,
                epoch,
            });
            bag.len()
        };
        if pending >= RETIRE_THRESHOLD {
            self.collect(slot);
        }
    }

    fn flush(&self) {
        // Advance as far as the active announcements allow, then apply the
        // two-epoch rule to every bag (not just the caller's). At
        // quiescence two advances always succeed, so everything frees.
        self.inner.local.scans.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.bump(Counter::ReclaimScans);
        let mut global = self.try_advance();
        global = self.try_advance().max(global);
        let mut freed = 0u64;
        for slot in self.inner.slots.iter() {
            let mut bag = slot.bag.lock().expect("epoch bag poisoned");
            bag.retain(|r| {
                if r.epoch.saturating_add(2) <= global {
                    // SAFETY: same two-epoch argument as `collect`.
                    unsafe { std::ptr::read(r).free() };
                    freed += 1;
                    false
                } else {
                    true
                }
            });
        }
        if freed > 0 {
            self.inner.local.frees.fetch_add(freed, Ordering::Relaxed);
            self.inner.stats.add(Counter::ReclaimFrees, freed);
        }
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        self.inner.local.snapshot()
    }
}

impl Drop for EpochReclaimer {
    fn drop(&mut self) {
        // Last owner going away: nothing can hold protected references, so
        // destroy every remaining bag entry unconditionally.
        for slot in self.inner.slots.iter() {
            let mut bag = slot.bag.lock().expect("epoch bag poisoned");
            for r in bag.drain(..) {
                self.inner.local.frees.fetch_add(1, Ordering::Relaxed);
                self.inner.stats.bump(Counter::ReclaimFrees);
                // SAFETY: `&mut self` on the sole owner — quiescent.
                unsafe { r.free() };
            }
        }
    }
}

impl fmt::Debug for EpochReclaimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochReclaimer")
            .field("capacity", &self.inner.slots.len())
            .field("global_epoch", &self.inner.global.load(Ordering::Relaxed))
            .field("stats", &self.reclaim_stats())
            .finish()
    }
}
