//! Heap node shared by the dynamic pools.

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::AtomicPtr;

/// One linked node. `value` is `None` for queue dummies and for nodes whose
/// payload was already taken by the unique dequeue/pop winner.
pub(crate) struct Node<T> {
    pub(crate) value: UnsafeCell<Option<T>>,
    pub(crate) next: AtomicPtr<Node<T>>,
}

impl<T> Node<T> {
    /// Allocate a node holding `value`; the caller owns the raw pointer.
    pub(crate) fn boxed(value: Option<T>) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            value: UnsafeCell::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }

    /// Type-erased destructor handed to [`Reclaimer::retire`].
    ///
    /// # Safety
    /// `p` must be an owned `Box<Node<T>>` allocation, destroyed only once.
    ///
    /// [`Reclaimer::retire`]: crate::Reclaimer::retire
    pub(crate) unsafe fn drop_erased(p: *mut u8) {
        // SAFETY: forwarded contract — `p` came from `Node::<T>::boxed`.
        drop(unsafe { Box::from_raw(p.cast::<Node<T>>()) });
    }

    /// Take the payload out of `p`.
    ///
    /// # Safety
    /// The caller must hold the unique take right (it won the linearizing
    /// CAS) and `p` must be protected from destruction.
    pub(crate) unsafe fn take_value(p: *mut Node<T>) -> Option<T> {
        // SAFETY: unique take right per the contract; no other thread
        // accesses `value` concurrently.
        unsafe { (*(*p).value.get()).take() }
    }
}
