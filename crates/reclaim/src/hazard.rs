//! Hazard-pointer reclamation (Michael, 2004).
//!
//! Every thread owns a row of `HAZARDS_PER_SLOT` single-writer hazard
//! records. Before dereferencing a shared pointer the thread *publishes* it
//! into a record and then **re-validates** that the pointer is still
//! reachable from the structure; only a validated publication protects.
//! Retired nodes accumulate in the retiring slot's bag; past the retire
//! threshold the owner *scans* every record and destroys exactly the
//! retired nodes no record names.
//!
//! Memory bound: at most `slots × HAZARDS_PER_SLOT` nodes can be protected
//! at once, so each bag never holds more than threshold + that many nodes —
//! unlike epochs, a single stalled thread cannot delay unrelated frees.
//!
//! All orderings come from [`HazardSpec`]; the publish store and the scan
//! load are both SeqCst because the protocol is a Dekker-style store/load
//! handshake (publisher stores hazard then re-reads the structure; scanner
//! "stores" the unlink first — the linearizing CAS — then reads hazards).

use crate::registry::{self, SlotHolder};
use crate::{ReclaimStats, Reclaimer, Retired, StatCells};
use splash4_parmacs::{CachePadded, Counter, HazardSpec, SyncCounters};
use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// Hazard records per thread slot. Two suffice for every structure in this
/// crate (Michael-Scott dequeue protects head and next simultaneously).
pub const HAZARDS_PER_SLOT: usize = 2;

/// Retire-bag length that triggers a scan.
const RETIRE_THRESHOLD: usize = 64;

/// One thread's hazard row plus its retired bag.
struct HazardSlot {
    hazards: CachePadded<[AtomicPtr<u8>; HAZARDS_PER_SLOT]>,
    /// Uninstrumented `std::sync::Mutex` for the same reason as the epoch
    /// bags: reclamation bookkeeping must not perturb kernel lock profiles,
    /// and only the owning thread pushes.
    bag: Mutex<Vec<Retired>>,
}

struct Inner {
    slots: Box<[HazardSlot]>,
    in_use: Box<[AtomicBool]>,
    spec: HazardSpec,
    stats: Arc<SyncCounters>,
    local: StatCells,
}

impl SlotHolder for Inner {
    fn vacate(&self, slot: usize) {
        // Clear the departing thread's hazards so they stop pinning nodes;
        // its bag stays for the next lease-holder (or `flush`) to drain.
        for hp in self.slots[slot].hazards.iter() {
            hp.store(ptr::null_mut(), Ordering::Release);
        }
        self.in_use[slot].store(false, Ordering::Release);
    }
}

/// Hazard-pointer reclaimer (see the module docs for the protocol).
pub struct HazardReclaimer {
    registry_id: usize,
    inner: Arc<Inner>,
    holder: Arc<dyn SlotHolder>,
}

impl HazardReclaimer {
    /// Reclaimer with room for `capacity` concurrently live threads,
    /// shipping [`HazardSpec::SPLASH4`] orderings and reporting into
    /// `stats`.
    pub fn new(capacity: usize, stats: Arc<SyncCounters>) -> HazardReclaimer {
        HazardReclaimer::with_spec(capacity, stats, HazardSpec::SPLASH4)
    }

    /// Reclaimer with explicit orderings (ordering-sensitivity tests).
    pub fn with_spec(
        capacity: usize,
        stats: Arc<SyncCounters>,
        spec: HazardSpec,
    ) -> HazardReclaimer {
        let capacity = capacity.max(1);
        let inner = Arc::new(Inner {
            slots: (0..capacity)
                .map(|_| HazardSlot {
                    hazards: CachePadded::new(std::array::from_fn(|_| {
                        AtomicPtr::new(ptr::null_mut())
                    })),
                    bag: Mutex::new(Vec::new()),
                })
                .collect(),
            in_use: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
            spec,
            stats,
            local: StatCells::default(),
        });
        HazardReclaimer {
            registry_id: registry::new_registry_id(),
            holder: inner.clone(),
            inner,
        }
    }

    fn slot(&self) -> usize {
        registry::thread_slot(self.registry_id, &self.holder, &self.inner.in_use)
    }

    /// Scan every hazard record and destroy `slot`'s unprotected retirees.
    fn scan(&self, slot: usize) {
        self.inner.local.scans.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.bump(Counter::ReclaimScans);
        let s = self.inner.spec;
        let mut protected: Vec<*mut u8> =
            Vec::with_capacity(self.inner.slots.len() * HAZARDS_PER_SLOT);
        for row in self.inner.slots.iter() {
            for hp in row.hazards.iter() {
                let p = hp.load(s.scan_load);
                if !p.is_null() {
                    protected.push(p);
                }
            }
        }
        protected.sort_unstable();
        let mut bag = self.inner.slots[slot]
            .bag
            .lock()
            .expect("hazard bag poisoned");
        let mut freed = 0u64;
        bag.retain(|r| {
            if protected.binary_search(&r.ptr).is_ok() {
                true
            } else {
                // SAFETY: `r.ptr` was unlinked before retirement and no
                // hazard record named it *after* the unlink became visible
                // (SeqCst store/load pair), so no thread can still hold a
                // validated reference.
                unsafe { std::ptr::read(r).free() };
                freed += 1;
                false
            }
        });
        drop(bag);
        if freed > 0 {
            self.inner.local.frees.fetch_add(freed, Ordering::Relaxed);
            self.inner.stats.add(Counter::ReclaimFrees, freed);
        }
    }
}

impl Reclaimer for HazardReclaimer {
    fn enter(&self) -> usize {
        self.slot()
    }

    fn exit(&self, slot: usize) {
        let s = self.inner.spec;
        for hp in self.inner.slots[slot].hazards.iter() {
            hp.store(ptr::null_mut(), s.clear_store);
        }
    }

    fn protect(&self, slot: usize, hp: usize, ptr: *mut u8) {
        let s = self.inner.spec;
        self.inner.slots[slot].hazards[hp].store(ptr, s.publish_store);
    }

    unsafe fn retire(&self, slot: usize, ptr: *mut u8, drop_fn: unsafe fn(*mut u8)) {
        self.inner.local.retires.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.bump(Counter::ReclaimRetires);
        let pending = {
            let mut bag = self.inner.slots[slot]
                .bag
                .lock()
                .expect("hazard bag poisoned");
            bag.push(Retired {
                ptr,
                drop_fn,
                epoch: 0,
            });
            bag.len()
        };
        if pending >= RETIRE_THRESHOLD {
            self.scan(slot);
        }
    }

    fn flush(&self) {
        // One scan per slot drains every bag of its unprotected entries; at
        // quiescence all hazards are null, so everything frees.
        for slot in 0..self.inner.slots.len() {
            self.scan(slot);
        }
    }

    fn reclaim_stats(&self) -> ReclaimStats {
        self.inner.local.snapshot()
    }
}

impl Drop for HazardReclaimer {
    fn drop(&mut self) {
        // Last owner: no thread can hold a validated reference anymore.
        for slot in self.inner.slots.iter() {
            let mut bag = slot.bag.lock().expect("hazard bag poisoned");
            for r in bag.drain(..) {
                self.inner.local.frees.fetch_add(1, Ordering::Relaxed);
                self.inner.stats.bump(Counter::ReclaimFrees);
                // SAFETY: `&mut self` on the sole owner — quiescent.
                unsafe { r.free() };
            }
        }
    }
}

impl fmt::Debug for HazardReclaimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HazardReclaimer")
            .field("capacity", &self.inner.slots.len())
            .field("hazards_per_slot", &HAZARDS_PER_SLOT)
            .field("stats", &self.reclaim_stats())
            .finish()
    }
}
