//! Safe memory reclamation and dynamic lock-free task pools.
//!
//! The suite's original lock-free pools ([`TreiberStack`] and
//! [`TicketDispenser`] in `splash4-parmacs`) dodge the hard half of
//! lock-free programming — deciding when a popped node may be freed — by
//! never freeing: popped nodes go onto a retired list that lives until the
//! structure is dropped. That is sound and fast, but it caps peak memory at
//! total-pushes and keeps the task-parallel kernels on fixed-capacity index
//! pools. This crate supplies the missing half:
//!
//! - two reclamation back-ends behind one [`Reclaimer`] trait —
//!   [`EpochReclaimer`] (per-thread epoch announcements, per-slot
//!   defer-destroy bags, advance-on-quiescence) and [`HazardReclaimer`]
//!   (per-thread hazard-pointer records, scan-and-free past a retire
//!   threshold);
//! - truly dynamic pools on top of them — a Michael-Scott FIFO
//!   ([`MsQueue`]) and an elimination-backoff Treiber stack
//!   ([`EliminationStack`]) with real node allocation and deferred
//!   destruction — wrapped as a [`TaskPool`] implementing the suite's
//!   [`TaskQueue`] trait, so producers are unbounded.
//!
//! The public API is entirely safe: `unsafe` is confined to the node
//! management inside this crate, every atomic reads its ordering from the
//! `splash4_parmacs::spec` tables ([`EpochSpec`], [`HazardSpec`],
//! [`MsQueueSpec`], [`EliminationSpec`]), and the `splash4-check` model
//! checker drives shadow replicas of the same state machines (experiment
//! `R1-reclaim`), including seeded premature-free and never-retire mutants.
//!
//! Retire/scan/free traffic is instrumented into the shared
//! [`SyncCounters`] block (`reclaim_retires`, `reclaim_scans`,
//! `reclaim_frees` in the profile) and each reclaimer keeps an exact local
//! [`ReclaimStats`] so tests can assert drop-exactly-once and
//! no-leak-at-quiescence per instance.
//!
//! [`TreiberStack`]: splash4_parmacs::TreiberStack
//! [`TicketDispenser`]: splash4_parmacs::TicketDispenser
//! [`TaskQueue`]: splash4_parmacs::TaskQueue
//! [`EpochSpec`]: splash4_parmacs::EpochSpec
//! [`HazardSpec`]: splash4_parmacs::HazardSpec
//! [`MsQueueSpec`]: splash4_parmacs::MsQueueSpec
//! [`EliminationSpec`]: splash4_parmacs::EliminationSpec
//! [`SyncCounters`]: splash4_parmacs::SyncCounters

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod elimination;
pub mod epoch;
pub mod hazard;
pub mod ms_queue;
pub(crate) mod node;
pub mod pool;
pub(crate) mod registry;

pub use elimination::EliminationStack;
pub use epoch::EpochReclaimer;
pub use hazard::HazardReclaimer;
pub use ms_queue::MsQueue;
pub use pool::{PoolShape, ReclaimKind, TaskPool};

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A type-erased deferred destruction request.
///
/// `ptr` is an owned heap allocation whose real type only `drop_fn` knows;
/// `epoch` tags the global epoch at retirement (unused by hazard pointers).
pub(crate) struct Retired {
    pub(crate) ptr: *mut u8,
    pub(crate) drop_fn: unsafe fn(*mut u8),
    pub(crate) epoch: usize,
}

// SAFETY: a retired node is unlinked and owned exclusively by the bag it
// sits in; the bag hands it to exactly one `drop_fn` call on any thread.
unsafe impl Send for Retired {}

impl Retired {
    /// Destroy the retired allocation.
    ///
    /// # Safety
    /// Must be called at most once, after no thread can still hold a
    /// protected reference to `ptr` (the reclamation protocol's whole job).
    pub(crate) unsafe fn free(self) {
        // SAFETY: forwarded contract; `drop_fn` was captured with `ptr`'s
        // real type at retirement.
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

impl fmt::Debug for Retired {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Retired")
            .field("ptr", &self.ptr)
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// Exact per-reclaimer reclamation tallies (monotonic).
///
/// Unlike the shared [`SyncCounters`](splash4_parmacs::SyncCounters) fold —
/// which mixes every pool wired to one `SyncEnv` — these belong to a single
/// reclaimer instance, so tests can assert `frees == retires` at
/// quiescence for exactly the structure under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Nodes handed over for deferred destruction.
    pub retires: u64,
    /// Collection passes (epoch advance attempts / hazard sweeps).
    pub scans: u64,
    /// Retired nodes actually destroyed.
    pub frees: u64,
}

impl ReclaimStats {
    /// Retired nodes not yet destroyed.
    pub fn pending(&self) -> u64 {
        self.retires - self.frees
    }
}

/// Internal tally block shared by both reclaimers.
#[derive(Debug, Default)]
pub(crate) struct StatCells {
    pub(crate) retires: AtomicU64,
    pub(crate) scans: AtomicU64,
    pub(crate) frees: AtomicU64,
}

impl StatCells {
    pub(crate) fn snapshot(&self) -> ReclaimStats {
        // Load frees before retires: a concurrent retire+free between the
        // two loads can then only under-report frees, never show
        // frees > retires.
        let frees = self.frees.load(Ordering::Acquire);
        let scans = self.scans.load(Ordering::Acquire);
        let retires = self.retires.load(Ordering::Acquire);
        ReclaimStats {
            retires,
            scans,
            frees,
        }
    }
}

/// A safe-memory-reclamation back-end.
///
/// The protocol a lock-free structure follows:
///
/// 1. [`enter`](Reclaimer::enter) before touching shared nodes; keep the
///    returned slot for the whole operation.
/// 2. For every pointer that will be dereferenced, call
///    [`protect`](Reclaimer::protect) and then **re-validate** that the
///    pointer is still reachable from the structure before using it (the
///    publish/re-check pair is what makes hazard pointers sound; epoch
///    reclamation ignores it).
/// 3. After unlinking a node, [`retire`](Reclaimer::retire) it instead of
///    freeing.
/// 4. [`exit`](Reclaimer::exit) when done; destruction happens on later
///    retire/exit calls once no protected reference can remain.
///
/// Implementations lease one record per OS thread (released automatically
/// at thread exit), so any number of threads may share one reclaimer up to
/// its slot capacity.
pub trait Reclaimer: Send + Sync + fmt::Debug {
    /// Begin a protected region on the calling thread; returns the
    /// thread's slot, to be passed to the other methods of this operation.
    fn enter(&self) -> usize;

    /// End the calling thread's protected region.
    fn exit(&self, slot: usize);

    /// Publish hazard record `hp` (0-based, at least two per slot) for
    /// `ptr`. The caller must re-validate reachability afterwards; a no-op
    /// under epoch reclamation.
    fn protect(&self, slot: usize, hp: usize, ptr: *mut u8);

    /// Defer destruction of `ptr` until no protected reference can remain.
    ///
    /// # Safety
    /// `ptr` must be a live heap allocation matching `drop_fn`, already
    /// unlinked from the shared structure, and retired at most once.
    unsafe fn retire(&self, slot: usize, ptr: *mut u8, drop_fn: unsafe fn(*mut u8));

    /// Destroy every retired node the protocol can prove unreachable,
    /// advancing the protocol as far as it will go. At quiescence (no
    /// thread between [`enter`](Reclaimer::enter) and
    /// [`exit`](Reclaimer::exit)) this frees everything retired so far.
    fn flush(&self);

    /// Exact tallies for this reclaimer instance.
    fn reclaim_stats(&self) -> ReclaimStats;
}
