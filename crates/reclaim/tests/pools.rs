//! Reclamation correctness and stress tests (ISSUE satellite: tests).
//!
//! The counting-drop payload proves drop-exactly-once and
//! no-leak-at-quiescence for both reclaimers; the stress tests hammer both
//! pool shapes with 8 threads × 100k operations each and then check value
//! conservation plus full reclamation. Iteration counts shrink under Miri
//! (the CI Miri job runs this same file).

use splash4_parmacs::{SyncCounters, TaskQueue};
use splash4_reclaim::{
    EliminationStack, EpochReclaimer, HazardReclaimer, MsQueue, PoolShape, ReclaimKind, Reclaimer,
    TaskPool,
};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = if cfg!(miri) { 200 } else { 100_000 };

fn counters() -> Arc<SyncCounters> {
    Arc::new(SyncCounters::new())
}

/// Payload that counts its drops; `live` goes to zero only when every
/// instance has been dropped exactly once (a double drop would panic the
/// checked-subtraction debug assert or drive the counter negative).
struct Counted {
    live: Arc<AtomicU64>,
    #[allow(dead_code)]
    tag: u64,
}

impl Counted {
    fn new(live: &Arc<AtomicU64>, tag: u64) -> Counted {
        live.fetch_add(1, Ordering::Relaxed);
        Counted {
            live: live.clone(),
            tag,
        }
    }
}

impl Drop for Counted {
    fn drop(&mut self) {
        let prev = self.live.fetch_sub(1, Ordering::Relaxed);
        assert!(prev > 0, "payload dropped more than once");
    }
}

fn reclaimer(kind: ReclaimKind, stats: Arc<SyncCounters>) -> Arc<dyn Reclaimer> {
    match kind {
        ReclaimKind::Epoch => Arc::new(EpochReclaimer::new(THREADS, stats)),
        ReclaimKind::Hazard => Arc::new(HazardReclaimer::new(THREADS, stats)),
    }
}

/// Push/pop churn through an `MsQueue`, then flush at quiescence: every
/// retired node must be freed (no leak) and every payload dropped exactly
/// once.
fn queue_reclaims_everything(kind: ReclaimKind) {
    let stats = counters();
    let rec = reclaimer(kind, stats.clone());
    let live = Arc::new(AtomicU64::new(0));
    let q: MsQueue<Counted> = MsQueue::new(rec, stats);
    let n = if cfg!(miri) { 100 } else { 4096 };

    std::thread::scope(|s| {
        for t in 0..4 {
            let q = &q;
            let live = &live;
            s.spawn(move || {
                for i in 0..n {
                    q.push(Counted::new(live, (t * n + i) as u64));
                    if i % 2 == 0 {
                        drop(q.pop());
                    }
                }
                while q.pop().is_some() {}
            });
        }
    });

    assert!(q.is_empty());
    q.flush();
    let st = q.reclaim_stats();
    assert_eq!(st.retires as usize, 4 * n, "one retire per popped dummy");
    assert_eq!(
        st.pending(),
        0,
        "{kind:?}: quiescent flush must reclaim every retired node"
    );
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "{kind:?}: every payload dropped exactly once"
    );
}

fn queue_flush(kind: ReclaimKind) -> splash4_reclaim::ReclaimStats {
    let stats = counters();
    let rec = reclaimer(kind, stats.clone());
    let q: MsQueue<u64> = MsQueue::new(rec, stats);
    for i in 0..128 {
        q.push(i);
    }
    while q.pop().is_some() {}
    q.flush();
    q.reclaim_stats()
}

#[test]
fn epoch_queue_drops_exactly_once_and_leaks_nothing_at_quiescence() {
    queue_reclaims_everything(ReclaimKind::Epoch);
}

#[test]
fn hazard_queue_drops_exactly_once_and_leaks_nothing_at_quiescence() {
    queue_reclaims_everything(ReclaimKind::Hazard);
}

#[test]
fn both_reclaimers_free_all_retired_nodes_on_quiescent_flush() {
    for kind in [ReclaimKind::Epoch, ReclaimKind::Hazard] {
        let st = queue_flush(kind);
        assert_eq!(st.retires, 128);
        assert_eq!(st.frees, 128, "{kind:?} must free everything at quiescence");
        assert!(st.scans >= 1);
    }
}

/// Stack churn with the same counting payload, exercising the elimination
/// slot (threads ping-pong push/pop so offers collide).
fn stack_reclaims_everything(kind: ReclaimKind) {
    let stats = counters();
    let rec = reclaimer(kind, stats.clone());
    let live = Arc::new(AtomicU64::new(0));
    let st: EliminationStack<Counted> = EliminationStack::new(rec, stats);
    let n = if cfg!(miri) { 100 } else { 4096 };

    std::thread::scope(|s| {
        for t in 0..4 {
            let st = &st;
            let live = &live;
            s.spawn(move || {
                for i in 0..n {
                    st.push(Counted::new(live, (t * n + i) as u64));
                    if i % 2 == 1 {
                        drop(st.pop());
                    }
                }
                while st.pop().is_some() {}
            });
        }
    });

    assert!(st.is_empty());
    st.flush();
    let r = st.reclaim_stats();
    assert_eq!(r.retires as usize, 4 * n, "one retire per popped node");
    assert_eq!(r.pending(), 0, "{kind:?}: no leak at quiescence");
    assert_eq!(
        live.load(Ordering::Relaxed),
        0,
        "{kind:?}: every payload dropped exactly once"
    );
}

#[test]
fn epoch_stack_drops_exactly_once_and_leaks_nothing_at_quiescence() {
    stack_reclaims_everything(ReclaimKind::Epoch);
}

#[test]
fn hazard_stack_drops_exactly_once_and_leaks_nothing_at_quiescence() {
    stack_reclaims_everything(ReclaimKind::Hazard);
}

/// 8 threads × 100k mixed ops per pool shape and reclaimer: every pushed
/// value is popped exactly once (conservation) and the pool ends empty with
/// nothing pending after a quiescent flush.
fn stress(shape: PoolShape, kind: ReclaimKind) {
    let stats = counters();
    let pool: Arc<TaskPool<u64>> = Arc::new(TaskPool::new(shape, kind, THREADS, stats));

    let popped: Vec<Vec<u64>> = std::thread::scope(|s| {
        (0..THREADS)
            .map(|t| {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..OPS_PER_THREAD {
                        let v = (t * OPS_PER_THREAD + i) as u64;
                        TaskQueue::push(&*pool, v);
                        if i % 3 != 0 {
                            if let Some(x) = TaskQueue::pop(&*pool) {
                                got.push(x);
                            }
                        }
                    }
                    while let Some(x) = TaskQueue::pop(&*pool) {
                        got.push(x);
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    let total = THREADS * OPS_PER_THREAD;
    let mut seen = HashSet::with_capacity(total);
    for v in popped.iter().flatten() {
        assert!(
            seen.insert(*v),
            "{shape:?}/{kind:?}: value {v} popped twice"
        );
    }
    assert_eq!(
        seen.len(),
        total,
        "{shape:?}/{kind:?}: every pushed value must be popped exactly once"
    );
    assert!(pool.is_empty());
    pool.flush();
    assert_eq!(
        pool.reclaim_stats().pending(),
        0,
        "{shape:?}/{kind:?}: quiescent flush reclaims everything"
    );
}

#[test]
fn stress_fifo_pool_under_epoch_reclamation() {
    stress(PoolShape::Fifo, ReclaimKind::Epoch);
}

#[test]
fn stress_fifo_pool_under_hazard_reclamation() {
    stress(PoolShape::Fifo, ReclaimKind::Hazard);
}

#[test]
fn stress_lifo_pool_under_epoch_reclamation() {
    stress(PoolShape::Lifo, ReclaimKind::Epoch);
}

#[test]
fn stress_lifo_pool_under_hazard_reclamation() {
    stress(PoolShape::Lifo, ReclaimKind::Hazard);
}
