//! End-to-end tests of the `splash4-report --validate` / `--compare` CLI:
//! the exact invocations CI runs, checked at the exit-code level.

use splash4_harness::measure::Summary;
use splash4_parmacs::{json, Json};
use std::path::{Path, PathBuf};
use std::process::Command;

fn report_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_splash4-report"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("splash4-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The committed reference baseline at the repository root.
fn committed_baseline() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_results.json")
}

/// A structurally complete v2 document: every rate metric scales with
/// `scale`, every CI is ±`rci`·median.
fn synth_v2(scale: f64, rci: f64) -> String {
    let s = |median: f64| -> Json {
        Summary {
            median,
            ci_lo: median * (1.0 - rci),
            ci_hi: median * (1.0 + rci),
            reps: 5,
            cv: rci,
            samples: vec![median; 5],
        }
        .to_json()
    };
    let group = |m3: f64, m4: f64| {
        json!({
            "splash3": s(m3 * scale),
            "splash4": s(m4 * scale),
            "ratio": s(m4 / m3),
        })
    };
    json!({
        "schema": "splash4-bench-v2",
        "config": json!({
            "quick": false,
            "threads": 4u64,
            "sync_ops": 100000u64,
            "barrier_crossings": 10000u64,
            "sim_cores": 32u64,
            "sim_ops_per_core": 4000u64,
        }),
        "metrics": json!({
            "reducer_ops_per_sec": group(5.0e6, 40.0e6),
            "counter_grabs_per_sec": group(4.5e6, 40.0e6),
            "barrier_crossings_per_sec": group(1.5e5, 1.1e5),
            "sim_events_per_sec": json!({
                "engine": s(30.0e6 * scale),
                "reference": s(17.0e6 * scale),
                "speedup": s(30.0 / 17.0),
            }),
            "report_wall_secs": s(0.25 / scale),
        }),
    })
    .to_string_pretty()
}

/// A legacy v1 document (bare point estimates), as PR 3 wrote them.
fn synth_v1() -> String {
    json!({
        "schema": "splash4-bench-v1",
        "config": json!({
            "quick": false,
            "repetitions": 5u64,
            "threads": 4u64,
            "sync_ops": 100000u64,
            "barrier_crossings": 10000u64,
            "sim_cores": 32u64,
            "sim_ops_per_core": 4000u64,
        }),
        "metrics": json!({
            "reducer_ops_per_sec": json!({"splash3": 4.86e6, "splash4": 40.28e6}),
            "counter_grabs_per_sec": json!({"splash3": 4.57e6, "splash4": 40.42e6}),
            "barrier_crossings_per_sec": json!({"splash3": 1.47e5, "splash4": 1.14e5}),
            "sim_events_per_sec": json!({
                "engine": 30.88e6,
                "reference": 17.54e6,
                "speedup": 1.76,
            }),
            "report_wall_secs": 0.242,
        }),
    })
    .to_string_pretty()
}

#[test]
fn validate_accepts_committed_baseline_and_rejects_garbage() {
    let out = report_bin()
        .args(["--validate", committed_baseline().to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "committed baseline must validate: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let dir = tmp_dir("validate");
    let bad = dir.join("garbage.json");
    std::fs::write(&bad, "{\"schema\": \"splash4-bench-v2\"}").unwrap();
    let out = report_bin()
        .args(["--validate", bad.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "garbage must be rejected");
    let missing = dir.join("nope.json");
    let out = report_bin()
        .args(["--validate", missing.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "missing file must be an error");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compare_self_passes_on_committed_baseline() {
    let base = committed_baseline();
    let out = report_bin()
        .args(["--compare", base.to_str().unwrap(), base.to_str().unwrap()])
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "self-comparison must pass:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("PASS"), "{stdout}");
}

#[test]
fn compare_gates_synthetic_2x_slowdown() {
    let dir = tmp_dir("slowdown");
    let base = dir.join("base.json");
    let cand = dir.join("cand.json");
    std::fs::write(&base, synth_v2(1.0, 0.03)).unwrap();
    std::fs::write(&cand, synth_v2(0.5, 0.03)).unwrap();
    let out = report_bin()
        .args(["--compare", base.to_str().unwrap(), cand.to_str().unwrap()])
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "2x slowdown must gate:\n{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compare_tolerates_within_noise_wiggle() {
    let dir = tmp_dir("wiggle");
    let base = dir.join("base.json");
    let cand = dir.join("cand.json");
    std::fs::write(&base, synth_v2(1.0, 0.06)).unwrap();
    // 4 % shift with ±6 % intervals: overlapping, sub-threshold.
    std::fs::write(&cand, synth_v2(0.96, 0.06)).unwrap();
    let out = report_bin()
        .args(["--compare", base.to_str().unwrap(), cand.to_str().unwrap()])
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "within-noise wiggle must pass:\n{stdout}"
    );
    assert!(stdout.contains("PASS"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compare_reads_legacy_v1_documents() {
    let dir = tmp_dir("legacy");
    let v1 = dir.join("v1.json");
    let v2 = dir.join("v2.json");
    std::fs::write(&v1, synth_v1()).unwrap();
    std::fs::write(&v2, synth_v2(1.0, 0.03)).unwrap();
    // v1 self-comparison: identical numbers, must pass.
    let out = report_bin()
        .args(["--compare", v1.to_str().unwrap(), v1.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "v1 self-compare must pass:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // Mixed v1 baseline vs v2 candidate with similar numbers: must parse
    // and pass (the shim widens the v1 side by the legacy noise floor).
    let out = report_bin()
        .args(["--compare", v1.to_str().unwrap(), v2.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "v1→v2 history compare must pass:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `text` with an `atomics` cost-matrix group spliced into `metrics`, as a
/// candidate produced after the matrix landed would carry.
fn with_atomics(text: &str) -> String {
    let Json::Object(mut top) = Json::parse(text).unwrap() else {
        panic!("synth doc is an object");
    };
    let s = |median: f64| -> Json {
        Summary {
            median,
            ci_lo: median * 0.98,
            ci_hi: median * 1.02,
            reps: 5,
            cv: 0.02,
            samples: vec![median; 5],
        }
        .to_json()
    };
    let metrics = top
        .iter_mut()
        .find(|(k, _)| k == "metrics")
        .expect("metrics key");
    let Json::Object(m) = &mut metrics.1 else {
        panic!("metrics is an object");
    };
    m.push((
        "atomics".into(),
        json!({
            "cas_c1_ns": s(9.0),
            "faa_c1_ns": s(6.5),
            "faa_c4_ns": s(41.0),
        }),
    ));
    Json::Object(top).to_string_pretty()
}

#[test]
fn compare_reports_candidate_only_atomics_as_new_info_only() {
    let dir = tmp_dir("newgroup");
    let base = dir.join("base.json");
    let cand = dir.join("cand.json");
    // The baseline predates the atomic cost matrix entirely; the candidate
    // carries it. That is new coverage, not a regression: the gate must
    // pass and label the extra rows instead of erroring on the mismatch.
    std::fs::write(&base, synth_v2(1.0, 0.03)).unwrap();
    std::fs::write(&cand, with_atomics(&synth_v2(1.0, 0.03))).unwrap();
    let out = report_bin()
        .args(["--compare", base.to_str().unwrap(), cand.to_str().unwrap()])
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "candidate-only atomics group must not gate:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("PASS"), "{stdout}");
    assert!(stdout.contains("new (info-only)"), "{stdout}");
    assert!(stdout.contains("atomics/cas_c1_ns"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn calibrate_cli_lowers_a_bench_run_into_a_loadable_profile() {
    let dir = tmp_dir("calibrate");
    let bench = dir.join("atomics.json");
    let profile = dir.join("host-profile.json");
    // Fastest real matrix the binary can produce: quick mode.
    let out = report_bin()
        .args([
            "--bench",
            "atomics",
            "--quick",
            "--bench-out",
            bench.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "--bench atomics must succeed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The subset document must pass the same validator CI runs.
    let out = report_bin()
        .args(["--validate", bench.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "atomics subset must validate:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = report_bin()
        .args([
            "--calibrate",
            bench.to_str().unwrap(),
            "--profile-out",
            profile.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "--calibrate must succeed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The written profile must load back through --machine and drive a
    // simulation-backed experiment end to end.
    let doc = std::fs::read_to_string(&profile).unwrap();
    assert!(Json::parse(&doc).is_ok(), "profile is JSON: {doc}");
    let out = report_bin()
        .args([
            "--experiment",
            "F2-sim-epyc",
            "--class",
            "test",
            "--only",
            "fft",
            "--machine",
            profile.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "sim experiment on the calibrated profile must run:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("host-"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_out_refuses_to_overwrite_without_force() {
    let dir = tmp_dir("benchout");
    let existing = dir.join("BENCH_results.json");
    std::fs::write(&existing, "precious local baseline").unwrap();
    // The guard fires before any measurement runs, so this is fast.
    let out = report_bin()
        .args([
            "--bench",
            "--quick",
            "--bench-out",
            existing.to_str().unwrap(),
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "must refuse to overwrite");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--force"), "{stderr}");
    assert_eq!(
        std::fs::read_to_string(&existing).unwrap(),
        "precious local baseline",
        "refused write must leave the file untouched"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
