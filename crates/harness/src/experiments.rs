//! The paper's experiment inventory: one function per table/figure.
//!
//! Experiment ids follow `DESIGN.md` §4. Each function returns a [`Report`]
//! with an aligned text table (what the paper's figure/table shows) and a
//! JSON payload for downstream plotting.

use crate::cache::{fnv1a, ResultCache};
use crate::registry::BenchmarkId;
use crate::tables::{geomean, pct_change, Report, Table};
use splash4_kernels::InputClass;
use splash4_parmacs::{
    json, ConstructClass, SyncCounters, SyncEnv, SyncMode, SyncPolicy, ToJson, WorkModel,
};
use splash4_sim::{engine, MachineParams, Simulator};
use splash4_trace::{lower::lower, RingRecorder, TraceSummary};
use std::sync::Arc;

/// Cache of calibrated workload models, shared by every experiment run from
/// one [`ExperimentCtx`].
///
/// Calibrating a model means *running the kernel natively* (the measured
/// wall time rescales the per-item cycle estimates), so before this cache a
/// full `--all` report re-executed every kernel once per simulation-driven
/// experiment (F2, F3, F4, F5, F6, S1). Cloning the ctx shares the cache.
/// A thin wrapper over the generic content-hashed [`ResultCache`]: the key
/// is the `(benchmark, class)` pair, and concurrent requests for the same
/// model coalesce instead of calibrating twice.
#[derive(Debug, Clone)]
pub struct ModelCache {
    cache: ResultCache<WorkModel>,
}

impl Default for ModelCache {
    fn default() -> ModelCache {
        // Every (benchmark, class) pair fits with headroom: calibrated
        // models must never be evicted mid-report, or two experiments could
        // see different calibrations of the same kernel.
        ModelCache {
            cache: ResultCache::new(
                BenchmarkId::all().len() * InputClass::ALL.len(),
                Arc::new(SyncCounters::new()),
            ),
        }
    }
}

impl ModelCache {
    /// The cached calibrated model for `(b, class)`, running the kernel once
    /// on miss.
    pub fn get(&self, b: BenchmarkId, class: InputClass) -> WorkModel {
        let key = fnv1a(format!("model/{}/{}", b.name(), class.label()).as_bytes());
        self.cache.get_or_compute(key, || work_model(b, class)).0
    }

    /// Number of models currently cached.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` if no models have been cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// Shared experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Input class for kernel executions.
    pub class: InputClass,
    /// Benchmarks the per-workload experiments cover (`--only` narrows this
    /// from the full suite).
    pub benchmarks: Vec<BenchmarkId>,
    /// Thread counts for native (host) runs.
    pub native_threads: Vec<usize>,
    /// Core counts for simulated runs.
    pub sim_threads: Vec<usize>,
    /// Core count used for breakdown/ablation snapshots.
    pub snapshot_cores: usize,
    /// Calibrated-model cache shared across experiments (see [`ModelCache`]).
    pub models: ModelCache,
    /// Machine override for simulation-driven experiments (`--machine`):
    /// a preset or a calibrated host profile resolved via
    /// [`MachineParams::resolve`]. `None` keeps each experiment's default
    /// preset (e.g. `F2` on epyc-like, `F3` on icelake-like).
    pub machine: Option<MachineParams>,
}

impl Default for ExperimentCtx {
    fn default() -> ExperimentCtx {
        ExperimentCtx {
            class: InputClass::Test,
            benchmarks: BenchmarkId::all(),
            native_threads: vec![1, 2, 4],
            sim_threads: vec![1, 2, 4, 8, 16, 32, 64],
            snapshot_cores: 32,
            models: ModelCache::default(),
            machine: None,
        }
    }
}

impl ExperimentCtx {
    /// The calibrated workload model for `b` at this ctx's input class,
    /// running the kernel natively only on first request.
    pub fn work_model(&self, b: BenchmarkId) -> WorkModel {
        self.models.get(b, self.class)
    }

    /// The benchmarks this ctx's per-workload experiments iterate, in suite
    /// order.
    pub fn benchmarks(&self) -> impl Iterator<Item = BenchmarkId> + '_ {
        self.benchmarks.iter().copied()
    }
}

/// All known experiment ids, in presentation order.
pub const ALL_EXPERIMENTS: [&str; 18] = [
    "T1-inputs",
    "T2-changes",
    "T3-syncops",
    "F1-native",
    "F2-sim-epyc",
    "F3-sim-icelake",
    "F4-scalability",
    "F5-sync-breakdown",
    "F6-ablation",
    "F8-trace-replay",
    "F9-combining",
    "S1-sensitivity",
    "V1-check",
    "V2-kernel-check",
    "C1-combining",
    "R1-reclaim",
    "W1-weakmem",
    "D1-diversity",
];

/// Dispatch an experiment by id.
///
/// # Errors
/// Returns an error message for unknown ids.
pub fn run_experiment(id: &str, ctx: &ExperimentCtx) -> Result<Report, String> {
    match id {
        "T1-inputs" => Ok(t1_inputs(ctx)),
        "T2-changes" => Ok(t2_changes(ctx)),
        "T3-syncops" => Ok(t3_syncops(ctx)),
        "F1-native" => Ok(f1_native(ctx)),
        "F2-sim-epyc" => Ok(sim_normalized(
            "F2-sim-epyc",
            ctx.machine.unwrap_or_else(MachineParams::epyc_like),
            ctx,
        )),
        "F3-sim-icelake" => Ok(sim_normalized(
            "F3-sim-icelake",
            ctx.machine.unwrap_or_else(MachineParams::icelake_like),
            ctx,
        )),
        "F4-scalability" => Ok(f4_scalability(ctx)),
        "F5-sync-breakdown" => Ok(f5_breakdown(ctx)),
        "F6-ablation" => Ok(f6_ablation(ctx)),
        "F8-trace-replay" => Ok(f8_trace_replay(ctx)),
        "F9-combining" => Ok(f9_combining(ctx)),
        "S1-sensitivity" => Ok(s1_sensitivity(ctx)),
        "V1-check" => Ok(v1_check(ctx)),
        "V2-kernel-check" => Ok(v2_kernel_check(ctx)),
        "C1-combining" => Ok(c1_combining(ctx)),
        "R1-reclaim" => Ok(r1_reclaim(ctx)),
        "W1-weakmem" => Ok(w1_weakmem(ctx)),
        "D1-diversity" => Ok(d1_diversity(ctx)),
        _ => Err(format!(
            "unknown experiment '{id}'; known: {}",
            ALL_EXPERIMENTS.join(", ")
        )),
    }
}

/// Obtain a calibrated workload model for `b` (median of three
/// single-thread lock-free runs).
///
/// Kernels calibrate their model's per-item compute to the run's measured
/// wall time, so a single sample is at the mercy of cache/allocator warmup:
/// the first run of a process can measure ~25% slower than the steady
/// state, yielding a visibly different model. Three runs with a median pick
/// reject that outlier and make repeated calibrations agree. (With
/// [`ModelCache`] each `(benchmark, class)` pays this once per process.)
pub fn work_model(b: BenchmarkId, class: InputClass) -> WorkModel {
    let run = || {
        let env = SyncEnv::new(SyncMode::LockFree, 1);
        b.run(class, &env).work
    };
    let mut models = [run(), run(), run()];
    models.sort_by_key(splash4_parmacs::WorkModel::total_cycles);
    let [_, median, _] = models;
    median
}

/// Run `b` natively with a ring recorder attached and return the kernel
/// result together with the recorded trace.
pub fn record_trace(
    b: BenchmarkId,
    class: InputClass,
    mode: SyncMode,
    threads: usize,
) -> (splash4_kernels::KernelResult, splash4_trace::Trace) {
    let recorder = Arc::new(RingRecorder::new(b.name(), threads));
    let env = SyncEnv::new(mode, threads).with_trace(recorder.clone());
    let result = b.run(class, &env);
    drop(env);
    let trace = Arc::try_unwrap(recorder)
        .expect("kernel must not retain the trace sink")
        .finish();
    (result, trace)
}

/// `T1-inputs`: the suite/workload/input table.
fn t1_inputs(ctx: &ExperimentCtx) -> Report {
    let mut t = Table::new(vec!["benchmark", "test", "small", "native"]);
    let mut rows = Vec::new();
    for b in ctx.benchmarks() {
        let cells: Vec<String> = InputClass::ALL
            .iter()
            .map(|&c| b.input_description(c))
            .collect();
        rows.push(json!({
            "benchmark": b.name(),
            "test": cells[0], "small": cells[1], "native": cells[2],
        }));
        t.row(vec![
            b.name().to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    Report {
        id: "T1-inputs".into(),
        title: "Workloads and input parameters per class".into(),
        text: t.render(),
        json: json!({ "rows": rows }),
        csv: t.to_csv(),
    }
}

/// `T2-changes`: per-benchmark summary of what the modernization replaces.
fn t2_changes(ctx: &ExperimentCtx) -> Report {
    let mut t = Table::new(vec![
        "benchmark",
        "locks(S3)",
        "rmws(S4)",
        "barriers",
        "getsubs",
        "queue-ops",
        "reduces",
    ]);
    let mut rows = Vec::new();
    for b in ctx.benchmarks() {
        let lb = b
            .run(ctx.class, &SyncEnv::new(SyncMode::LockBased, 2))
            .profile;
        let lf = b
            .run(ctx.class, &SyncEnv::new(SyncMode::LockFree, 2))
            .profile;
        t.row(vec![
            b.name().to_string(),
            lb.lock_acquires.to_string(),
            lf.atomic_rmws.to_string(),
            lf.barrier_waits.to_string(),
            lf.getsub_calls.to_string(),
            lf.queue_ops.to_string(),
            lf.reduce_ops.to_string(),
        ]);
        rows.push(json!({
            "benchmark": b.name(),
            "splash3": lb, "splash4": lf,
        }));
    }
    Report {
        id: "T2-changes".into(),
        title: "Dynamic sync constructs replaced by the modernization (2 threads)".into(),
        text: t.render(),
        json: json!({ "class": ctx.class.label(), "rows": rows }),
        csv: t.to_csv(),
    }
}

/// `T3-syncops`: full dynamic sync-operation counts, both modes.
fn t3_syncops(ctx: &ExperimentCtx) -> Report {
    let mut t = Table::new(vec![
        "benchmark",
        "mode",
        "locks",
        "contended",
        "rmws",
        "cas-retries",
        "barriers",
        "getsubs",
        "reduces",
        "queue-ops",
        "flag-waits",
    ]);
    let mut rows = Vec::new();
    for b in ctx.benchmarks() {
        for mode in SyncMode::ALL {
            let p = b.run(ctx.class, &SyncEnv::new(mode, 4)).profile;
            t.row(vec![
                b.name().to_string(),
                mode.label().to_string(),
                p.lock_acquires.to_string(),
                p.lock_contended.to_string(),
                p.atomic_rmws.to_string(),
                p.cas_failures.to_string(),
                p.barrier_waits.to_string(),
                p.getsub_calls.to_string(),
                p.reduce_ops.to_string(),
                p.queue_ops.to_string(),
                p.flag_waits.to_string(),
            ]);
            rows.push(json!({ "benchmark": b.name(), "mode": mode.label(), "profile": p }));
        }
    }
    Report {
        id: "T3-syncops".into(),
        title: "Dynamic synchronization operations (4 threads)".into(),
        text: t.render(),
        json: json!({ "class": ctx.class.label(), "rows": rows }),
        csv: t.to_csv(),
    }
}

/// `F1-native`: normalized execution time on the host.
fn f1_native(ctx: &ExperimentCtx) -> Report {
    let mut header = vec!["benchmark".to_string()];
    for &p in &ctx.native_threads {
        header.push(format!("t={p}"));
    }
    let mut t = Table::new(header);
    let mut per_thread_ratios: Vec<Vec<f64>> = vec![Vec::new(); ctx.native_threads.len()];
    let mut rows = Vec::new();
    for b in ctx.benchmarks() {
        let mut cells = vec![b.name().to_string()];
        let mut jrow = vec![];
        for (i, &p) in ctx.native_threads.iter().enumerate() {
            let lb = b.run(ctx.class, &SyncEnv::new(SyncMode::LockBased, p));
            let lf = b.run(ctx.class, &SyncEnv::new(SyncMode::LockFree, p));
            let ratio = lf.elapsed.as_secs_f64() / lb.elapsed.as_secs_f64().max(1e-12);
            per_thread_ratios[i].push(ratio);
            cells.push(format!("{ratio:.3}"));
            jrow.push(json!({
                "threads": p,
                "splash3_ns": lb.elapsed_ns(),
                "splash4_ns": lf.elapsed_ns(),
                "ratio": ratio,
            }));
        }
        t.row(cells);
        rows.push(json!({ "benchmark": b.name(), "points": jrow }));
    }
    let mut mean_cells = vec!["geomean".to_string()];
    for r in &per_thread_ratios {
        mean_cells.push(format!("{:.3}", geomean(r)));
    }
    t.row(mean_cells);
    Report {
        id: "F1-native".into(),
        title: format!(
            "Normalized execution time (Splash-4 / Splash-3), host runs, class={}",
            ctx.class.label()
        ),
        text: t.render(),
        json: json!({ "class": ctx.class.label(), "rows": rows }),
        csv: t.to_csv(),
    }
}

/// `F2`/`F3`: normalized execution time on a simulated machine.
fn sim_normalized(id: &str, machine: MachineParams, ctx: &ExperimentCtx) -> Report {
    let mut header = vec!["benchmark".to_string()];
    for &p in &ctx.sim_threads {
        header.push(format!("p={p}"));
    }
    let mut t = Table::new(header);
    let mut per_core_ratios: Vec<Vec<f64>> = vec![Vec::new(); ctx.sim_threads.len()];
    let mut rows = Vec::new();
    let mut sim = Simulator::new(machine);
    for b in ctx.benchmarks() {
        let work = ctx.work_model(b);
        let mut cells = vec![b.name().to_string()];
        let mut jrow = vec![];
        for (i, &p) in ctx.sim_threads.iter().enumerate() {
            let lb = sim.simulate(&work, SyncMode::LockBased, p);
            let lf = sim.simulate(&work, SyncMode::LockFree, p);
            let ratio = lf.total_ns as f64 / lb.total_ns.max(1) as f64;
            per_core_ratios[i].push(ratio);
            cells.push(format!("{ratio:.3}"));
            jrow.push(json!({
                "cores": p,
                "splash3_ns": lb.total_ns,
                "splash4_ns": lf.total_ns,
                "ratio": ratio,
            }));
        }
        t.row(cells);
        rows.push(json!({ "benchmark": b.name(), "points": jrow }));
    }
    let mut mean_cells = vec!["geomean".to_string()];
    let mut means = vec![];
    for r in &per_core_ratios {
        let g = geomean(r);
        means.push(g);
        mean_cells.push(format!("{g:.3}"));
    }
    t.row(mean_cells);
    let headline = means.last().copied().unwrap_or(f64::NAN);
    Report {
        id: id.into(),
        title: format!(
            "Normalized execution time (Splash-4 / Splash-3) on {} — {} at {} cores",
            machine.name,
            pct_change(headline),
            ctx.sim_threads.last().copied().unwrap_or(0),
        ),
        text: t.render(),
        json: json!({
            "machine": machine.name,
            "class": ctx.class.label(),
            "rows": rows,
            "geomeans": means,
        }),
        csv: t.to_csv(),
    }
}

/// `F4-scalability`: self-relative simulated speedup curves.
fn f4_scalability(ctx: &ExperimentCtx) -> Report {
    let machine = ctx.machine.unwrap_or_else(MachineParams::epyc_like);
    let mut header = vec!["benchmark".to_string(), "suite".to_string()];
    for &p in &ctx.sim_threads {
        header.push(format!("p={p}"));
    }
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    let mut sim = Simulator::new(machine);
    for b in ctx.benchmarks() {
        let work = ctx.work_model(b);
        for mode in SyncMode::ALL {
            let t1 = sim.simulate(&work, mode, 1).total_ns as f64;
            let mut cells = vec![b.name().to_string(), mode.label().to_string()];
            let mut speeds = vec![];
            for &p in &ctx.sim_threads {
                let tp = sim.simulate(&work, mode, p).total_ns as f64;
                let s = t1 / tp.max(1.0);
                speeds.push(s);
                cells.push(format!("{s:.2}"));
            }
            t.row(cells);
            rows.push(json!({ "benchmark": b.name(), "suite": mode.label(), "speedup": speeds }));
        }
    }
    Report {
        id: "F4-scalability".into(),
        title: format!("Simulated self-relative speedup ({})", machine.name),
        text: t.render(),
        json: json!({ "machine": machine.name, "rows": rows }),
        csv: t.to_csv(),
    }
}

/// `F5-sync-breakdown`: where simulated core-time goes at the snapshot core
/// count.
fn f5_breakdown(ctx: &ExperimentCtx) -> Report {
    let machine = ctx.machine.unwrap_or_else(MachineParams::epyc_like);
    let p = ctx.snapshot_cores;
    let mut t = Table::new(vec![
        "benchmark",
        "suite",
        "compute%",
        "service%",
        "wait%",
        "sync-local%",
        "barrier%",
    ]);
    let mut rows = Vec::new();
    let mut sim = Simulator::new(machine);
    for b in ctx.benchmarks() {
        let work = ctx.work_model(b);
        for mode in SyncMode::ALL {
            let res = sim.simulate(&work, mode, p);
            let (c, s, w, l, bar) = res.fractions();
            t.row(vec![
                b.name().to_string(),
                mode.label().to_string(),
                format!("{:.1}", c * 100.0),
                format!("{:.1}", s * 100.0),
                format!("{:.1}", w * 100.0),
                format!("{:.1}", l * 100.0),
                format!("{:.1}", bar * 100.0),
            ]);
            rows.push(json!({
                "benchmark": b.name(), "suite": mode.label(),
                "compute": c, "service": s, "wait": w, "sync_local": l, "barrier": bar,
            }));
        }
    }
    Report {
        id: "F5-sync-breakdown".into(),
        title: format!("Simulated time breakdown at {p} cores ({})", machine.name),
        text: t.render(),
        json: json!({ "machine": machine.name, "cores": p, "rows": rows }),
        csv: t.to_csv(),
    }
}

/// `F6-ablation`: modernize one construct class at a time.
fn f6_ablation(ctx: &ExperimentCtx) -> Report {
    let machine = MachineParams::epyc_like();
    let p = ctx.snapshot_cores;
    let classes = ConstructClass::ALL;
    let mut header = vec!["benchmark".to_string()];
    for c in classes {
        header.push(format!("+{}", c.label()));
    }
    header.push("full".to_string());
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    let mut per_class: Vec<Vec<f64>> = vec![Vec::new(); classes.len() + 1];
    let mut sim = Simulator::new(machine);
    for b in ctx.benchmarks() {
        let work = ctx.work_model(b);
        let base = sim.simulate(&work, SyncMode::LockBased, p).total_ns as f64;
        let mut cells = vec![b.name().to_string()];
        let mut jrow = vec![];
        for (i, &c) in classes.iter().enumerate() {
            let policy = SyncPolicy::uniform(SyncMode::LockBased).with(c, SyncMode::LockFree);
            let tt = sim.simulate(&work, policy, p).total_ns as f64;
            let ratio = tt / base.max(1.0);
            per_class[i].push(ratio);
            cells.push(format!("{ratio:.3}"));
            jrow.push(json!({ "class": c.label(), "ratio": ratio }));
        }
        let full = sim.simulate(&work, SyncMode::LockFree, p).total_ns as f64 / base.max(1.0);
        per_class[classes.len()].push(full);
        cells.push(format!("{full:.3}"));
        t.row(cells);
        rows.push(json!({ "benchmark": b.name(), "ablations": jrow, "full": full }));
    }
    let mut mean_cells = vec!["geomean".to_string()];
    for r in &per_class {
        mean_cells.push(format!("{:.3}", geomean(r)));
    }
    t.row(mean_cells);
    Report {
        id: "F6-ablation".into(),
        title: format!(
            "Per-construct modernization: time vs Splash-3 baseline at {p} cores ({})",
            machine.name
        ),
        text: t.render(),
        json: json!({ "machine": machine.name, "cores": p, "rows": rows }),
        csv: t.to_csv(),
    }
}

/// `F8-trace-replay` (extension): trace-driven replay vs the analytic model.
///
/// Each benchmark is run natively with the lock-free back-end and a
/// [`RingRecorder`] attached; the recorded sync-event trace is lowered to
/// simulator programs at several core counts (re-dealing the dynamically
/// scheduled work, so a 4-thread recording drives 1–64-core sweeps) under
/// both sync policies. The resulting Splash-4/Splash-3 normalized times are
/// tabulated next to the analytic model's prediction from the same run.
fn f8_trace_replay(ctx: &ExperimentCtx) -> Report {
    /// Native thread count for the traced runs.
    const TRACE_THREADS: usize = 4;
    /// Simulated core counts for the replay sweep.
    const REPLAY_CORES: [usize; 4] = [1, 8, 32, 64];

    let machines: Vec<MachineParams> = match ctx.machine {
        Some(m) => vec![m],
        None => vec![MachineParams::epyc_like(), MachineParams::icelake_like()],
    };
    let mut header = vec!["benchmark".to_string(), "machine".to_string()];
    for &p in &REPLAY_CORES {
        header.push(format!("trace p={p}"));
        header.push(format!("model p={p}"));
    }
    let mut t = Table::new(header);
    let mut rows = Vec::new();
    // Per machine, per core count: trace-driven and analytic ratios.
    let mut trace_ratios = vec![vec![Vec::new(); REPLAY_CORES.len()]; machines.len()];
    let mut model_ratios = vec![vec![Vec::new(); REPLAY_CORES.len()]; machines.len()];
    // One memoizing simulator per machine preset, plus an engine whose
    // scratch is reused for every lowered trace program.
    let mut sims: Vec<Simulator> = machines.iter().map(|&m| Simulator::new(m)).collect();
    let mut eng = engine::Engine::new();

    for b in ctx.benchmarks() {
        let (result, trace) = record_trace(b, ctx.class, SyncMode::LockFree, TRACE_THREADS);
        let summary = TraceSummary::from_trace(&trace);
        let mut jpoints = Vec::new();
        for (mi, machine) in machines.iter().enumerate() {
            let mut cells = vec![b.name().to_string(), machine.name.to_string()];
            for (pi, &p) in REPLAY_CORES.iter().enumerate() {
                let mut run = |mode: SyncMode| {
                    let prog = lower(&trace, SyncPolicy::uniform(mode), p, machine);
                    eng.run(&prog, machine).total_ns
                };
                let (s3, s4) = (run(SyncMode::LockBased), run(SyncMode::LockFree));
                let tr = s4 as f64 / s3.max(1) as f64;
                let a3 = sims[mi]
                    .simulate(&result.work, SyncMode::LockBased, p)
                    .total_ns;
                let a4 = sims[mi]
                    .simulate(&result.work, SyncMode::LockFree, p)
                    .total_ns;
                let mr = a4 as f64 / a3.max(1) as f64;
                trace_ratios[mi][pi].push(tr);
                model_ratios[mi][pi].push(mr);
                cells.push(format!("{tr:.3}"));
                cells.push(format!("{mr:.3}"));
                jpoints.push(json!({
                    "machine": machine.name,
                    "cores": p,
                    "trace_splash3_ns": s3,
                    "trace_splash4_ns": s4,
                    "trace_ratio": tr,
                    "model_ratio": mr,
                }));
            }
            t.row(cells);
        }
        rows.push(json!({
            "benchmark": b.name(),
            "trace": summary.to_json(),
            "points": jpoints,
        }));
    }

    let mut jmeans = Vec::new();
    for (mi, machine) in machines.iter().enumerate() {
        let mut cells = vec!["geomean".to_string(), machine.name.to_string()];
        let mut tg = Vec::new();
        let mut mg = Vec::new();
        for pi in 0..REPLAY_CORES.len() {
            let (gt, gm) = (
                geomean(&trace_ratios[mi][pi]),
                geomean(&model_ratios[mi][pi]),
            );
            tg.push(gt);
            mg.push(gm);
            cells.push(format!("{gt:.3}"));
            cells.push(format!("{gm:.3}"));
        }
        t.row(cells);
        jmeans.push(json!({
            "machine": machine.name,
            "cores": REPLAY_CORES.to_vec(),
            "trace": tg,
            "model": mg,
        }));
    }

    Report {
        id: "F8-trace-replay".into(),
        title: format!(
            "Trace-driven replay vs analytic model ({TRACE_THREADS}-thread native traces, class={})",
            ctx.class.label()
        ),
        text: t.render(),
        json: json!({
            "class": ctx.class.label(),
            "trace_threads": TRACE_THREADS,
            "cores": REPLAY_CORES.to_vec(),
            "rows": rows,
            "geomeans": jmeans,
        }),
        csv: t.to_csv(),
    }
}

/// `F9-combining` (extension): the flat-combining crossover sweep.
///
/// The third sync generation (`splash4x`) funnels each contended update
/// through a combiner instead of bouncing the line between `fetch_add`
/// callers, so a combined op costs one record handoff plus an amortized
/// share of the combiner's streaming pass — cheaper than a serialized line
/// transfer once the drain batch is wide, but *more* expensive at low
/// thread counts where the batch degenerates to the extra publish round
/// trip. This sweep simulates all benchmarks under `splash4x` and `splash4`
/// across the core grid and tabulates the normalized time
/// (combining / lock-free, lower favors combining): the interesting output
/// is the crossover core count where the geomean dips below parity and the
/// speedup the batching buys at full scale.
fn f9_combining(ctx: &ExperimentCtx) -> Report {
    let machine = MachineParams::epyc_like();
    let mut header = vec!["benchmark".to_string()];
    for &p in &ctx.sim_threads {
        header.push(format!("p={p}"));
    }
    let mut t = Table::new(header);
    let mut per_core_ratios: Vec<Vec<f64>> = vec![Vec::new(); ctx.sim_threads.len()];
    let mut rows = Vec::new();
    let mut sim = Simulator::new(machine);
    for b in ctx.benchmarks() {
        let work = ctx.work_model(b);
        let mut cells = vec![b.name().to_string()];
        let mut jrow = vec![];
        for (i, &p) in ctx.sim_threads.iter().enumerate() {
            let lf = sim.simulate(&work, SyncMode::LockFree, p);
            let cb = sim.simulate(&work, SyncMode::Combining, p);
            let ratio = cb.total_ns as f64 / lf.total_ns.max(1) as f64;
            per_core_ratios[i].push(ratio);
            cells.push(format!("{ratio:.3}"));
            jrow.push(json!({
                "cores": p,
                "splash4_ns": lf.total_ns,
                "splash4x_ns": cb.total_ns,
                "ratio": ratio,
            }));
        }
        t.row(cells);
        rows.push(json!({ "benchmark": b.name(), "points": jrow }));
    }
    let mut mean_cells = vec!["geomean".to_string()];
    let mut means = vec![];
    for r in &per_core_ratios {
        let g = geomean(r);
        means.push(g);
        mean_cells.push(format!("{g:.3}"));
    }
    t.row(mean_cells);
    // Speedup convention for the headline and the gate: lock-free time over
    // combining time, > 1.0 means combining wins.
    let speedups: Vec<f64> = means.iter().map(|&g| 1.0 / g.max(1e-12)).collect();
    let headline = speedups.last().copied().unwrap_or(f64::NAN);
    let crossover = ctx
        .sim_threads
        .iter()
        .zip(&means)
        .find(|&(_, &g)| g < 1.0)
        .map(|(&p, _)| p);
    Report {
        id: "F9-combining".into(),
        title: format!(
            "Flat combining vs lock-free on {} — {headline:.2}x at {} cores, crossover at {}",
            machine.name,
            ctx.sim_threads.last().copied().unwrap_or(0),
            crossover.map_or_else(|| "none".to_string(), |p| format!("p={p}")),
        ),
        text: t.render(),
        json: json!({
            "machine": machine.name,
            "class": ctx.class.label(),
            "cores": ctx.sim_threads.clone(),
            "rows": rows,
            "geomeans": means,
            "combining_vs_lockfree": speedups,
            "crossover_cores": crossover,
        }),
        csv: t.to_csv(),
    }
}

/// `S1-sensitivity` (extension): robustness of the headline result to the
/// two calibrated machine parameters.
///
/// The convoy fraction and condvar wake cost were fitted once against the
/// paper's two headline numbers (`DESIGN.md` §8). This experiment halves and
/// doubles each and reports the 64-core suite geomean for every combination:
/// the conclusion ("Splash-4 wins substantially at scale") should survive
/// the entire grid.
fn s1_sensitivity(ctx: &ExperimentCtx) -> Report {
    let base = MachineParams::epyc_like();
    let cores = *ctx.sim_threads.iter().max().unwrap_or(&64);
    let works: Vec<WorkModel> = ctx.benchmarks().map(|b| ctx.work_model(b)).collect();
    let scales = [0.5f64, 1.0, 2.0];
    let mut t = Table::new(vec!["convoy×", "condvar×", "geomean ratio", "reduction"]);
    let mut rows = Vec::new();
    for &cs in &scales {
        for &ws in &scales {
            let mut m = base;
            m.convoy_fraction = base.convoy_fraction * cs;
            m.condvar_wake_ns = (base.condvar_wake_ns as f64 * ws).round() as u64;
            // The program cache is machine-independent but the simulator is
            // machine-bound: one per perturbed grid point.
            let mut sim = Simulator::new(m);
            let ratios: Vec<f64> = works
                .iter()
                .map(|w| {
                    let lb = sim.simulate(w, SyncMode::LockBased, cores).total_ns as f64;
                    let lf = sim.simulate(w, SyncMode::LockFree, cores).total_ns as f64;
                    lf / lb.max(1.0)
                })
                .collect();
            let g = geomean(&ratios);
            t.row(vec![
                format!("{cs}"),
                format!("{ws}"),
                format!("{g:.3}"),
                pct_change(g),
            ]);
            rows.push(json!({ "convoy_scale": cs, "condvar_scale": ws, "geomean": g }));
        }
    }
    Report {
        id: "S1-sensitivity".into(),
        title: format!(
            "Headline sensitivity to calibrated parameters ({} cores, {})",
            cores, base.name
        ),
        text: t.render(),
        json: json!({ "cores": cores, "rows": rows }),
        csv: t.to_csv(),
    }
}

/// `V1-check` (extension): deterministic model checking of every lock-free
/// construct the suite's macro layer ships.
///
/// Each construct class runs a closed scenario under the `splash4-check`
/// cooperative scheduler: bounded-preemption DFS plus seeded PCT random
/// schedules, with happens-before race detection, deadlock detection,
/// invariants, and linearizability against a sequential spec. The second
/// table re-runs the checker against the mutant catalog (weakened ordering,
/// missed sense flip, lost-update window) and reports the minimized
/// counterexample schedule that exposes each injected bug.
fn v1_check(_ctx: &ExperimentCtx) -> Report {
    let budget = splash4_check::CheckBudget::default();
    let rows = splash4_check::check_suite(&budget);
    let muts = splash4_check::check_mutants(&budget);
    check_report(
        "V1-check",
        format!(
            "Model checking the lock-free constructs ({} schedules/construct minimum, seed {:#x})",
            budget.min_schedules, budget.seed
        ),
        &budget,
        &rows,
        &muts,
    )
}

/// `V2-kernel-check` (extension): the model checker applied to real kernel
/// bodies at `Check` scale.
///
/// Where `V1-check` verifies each lock-free construct in isolation, this
/// experiment explores the constructs *as the kernels compose them*: radix's
/// pass-0 rank dispensing (GETSUB bucket claims + barrier + per-bucket
/// `fetch_add`) over the kernel's real key array, and water-nsquared's
/// CAS-loop energy reduction over the real Lennard-Jones pair energies. The
/// mutation table seeds kernel-shaped bugs — a lost rank, a lost CAS retry —
/// that the checker must catch with a minimized counterexample schedule.
fn v2_kernel_check(_ctx: &ExperimentCtx) -> Report {
    let budget = splash4_check::CheckBudget::default();
    let rows = splash4_check::check_kernels(&budget);
    let muts = splash4_check::check_kernel_mutants(&budget);
    check_report(
        "V2-kernel-check",
        format!(
            "Model checking real kernel bodies at Check scale ({} schedules/scenario minimum, seed {:#x})",
            budget.min_schedules, budget.seed
        ),
        &budget,
        &rows,
        &muts,
    )
}

/// `C1-combining` (extension): model checking the flat-combining core and
/// every construct ported to it.
///
/// Shadow replicas of the combining reducer (u64 and f64), `GETSUB`
/// counter, ticket dispenser, and barrier run under the checker with the
/// protocol's record arguments and results modeled as *plain data*: the
/// real core keeps them in `Relaxed` atomics ordered only by the
/// publish→scan and complete→wait edges, so any weakening of those edges
/// surfaces as a vector-clock data race rather than a silently narrowed
/// search. The mutant table seeds the three flat-combining protocol bugs —
/// a lost publication record, a combiner that exits before draining, and a
/// stale result handoff — plus a relaxed scan, each of which must fall with
/// a replayable counterexample schedule.
fn c1_combining(_ctx: &ExperimentCtx) -> Report {
    let budget = splash4_check::CheckBudget::default();
    let rows = splash4_check::check_combining(&budget);
    let muts = splash4_check::check_combining_mutants(&budget);
    check_report(
        "C1-combining",
        format!(
            "Model checking the flat-combining sync generation ({} schedules/scenario minimum, seed {:#x})",
            budget.min_schedules, budget.seed
        ),
        &budget,
        &rows,
        &muts,
    )
}

/// `R1-reclaim` (extension): model checking the reclamation layer and the
/// dynamic task pools built on it.
///
/// Shadow replicas of the Michael-Scott queue and the elimination-backoff
/// exchange run against FIFO/LIFO linearizability specs, and two protocol
/// scenarios model the reclamation invariants directly: a free is a poison
/// write, so a premature free is a data race or a poisoned-value invariant
/// failure, and a retire that never frees fails the leak-at-quiescence
/// finale. The mutant table seeds exactly those bugs — premature free,
/// never-retire leak, lost tail-link CAS, duplicate elimination take,
/// skipped hazard validation — and each must fall with a replayable
/// counterexample schedule.
fn r1_reclaim(_ctx: &ExperimentCtx) -> Report {
    let budget = splash4_check::CheckBudget::default();
    let rows = splash4_check::check_reclaim(&budget);
    let muts = splash4_check::check_reclaim_mutants(&budget);
    check_report(
        "R1-reclaim",
        format!(
            "Model checking memory reclamation and dynamic task pools ({} schedules/scenario minimum, seed {:#x})",
            budget.min_schedules, budget.seed
        ),
        &budget,
        &rows,
        &muts,
    )
}

/// `W1-weakmem` (extension): weak-memory value exploration in the checker.
///
/// The V1/V2/C1/R1 suites explore *interleavings* under sequentially
/// consistent values, so an ordering bug only surfaces through the data race
/// it causes on plain data. This experiment runs the checker's weak-memory
/// mode: every atomic keeps its store history and non-`SeqCst` loads branch
/// over the stale records the C11 orderings admit. The first table verifies
/// the shipped Splash-4 annotations pass under weak memory; the mutant table
/// seeds one-ordering downgrades (relaxed flag waits, `SeqCst → Acquire`
/// store-buffering windows, a relaxed barrier spin) and reports, per mutant,
/// both the weak-memory detection *and* whether SC-only exploration missed
/// the bug — `sc-missed = yes` on every row is the point: these are exactly
/// the bugs interleaving-only search cannot find.
fn w1_weakmem(_ctx: &ExperimentCtx) -> Report {
    let budget = splash4_check::CheckBudget::default();
    let rows = splash4_check::check_weakmem(&budget);
    let muts = splash4_check::check_weakmem_mutants(&budget);

    let mut t = Table::new(vec![
        "construct",
        "property",
        "schedules",
        "executions",
        "verdict",
    ]);
    let mut jrows = Vec::new();
    for r in &rows {
        t.row(vec![
            r.construct.to_string(),
            r.property.to_string(),
            r.schedules.to_string(),
            r.executions.to_string(),
            format!("{}", r.verdict),
        ]);
        jrows.push(json!({
            "construct": r.construct,
            "property": r.property,
            "schedules": r.schedules as u64,
            "executions": r.executions as u64,
            "verdict": format!("{}", r.verdict),
            "counterexample": r.counterexample.clone(),
        }));
    }

    let mut mt = Table::new(vec![
        "mutant",
        "schedules",
        "detected",
        "sc-missed",
        "counterexample",
    ]);
    let mut jmuts = Vec::new();
    for m in &muts {
        let r = &m.report;
        mt.row(vec![
            r.name.to_string(),
            r.schedules.to_string(),
            if r.detected {
                "yes".into()
            } else {
                "NO".into()
            },
            if m.sc_missed {
                "yes".into()
            } else {
                "NO".into()
            },
            r.counterexample.clone(),
        ]);
        jmuts.push(json!({
            "mutant": r.name,
            "description": r.description,
            "schedules": r.schedules as u64,
            "executions": r.executions as u64,
            "detected": r.detected,
            "sc_missed": m.sc_missed,
            "counterexample": r.counterexample.clone(),
        }));
    }

    let text = format!(
        "{}\nordering mutants (caught only by weak-memory value exploration):\n{}",
        t.render(),
        mt.render()
    );
    Report {
        id: "W1-weakmem".into(),
        title: format!(
            "Weak-memory exploration: stale-read windows the C11 orderings admit \
             ({} schedules/scenario minimum, stale budget {}, seed {:#x})",
            budget.min_schedules,
            splash4_check::WEAK_STALE_READS,
            budget.seed
        ),
        text,
        json: json!({
            "min_schedules": budget.min_schedules as u64,
            "stale_reads": splash4_check::WEAK_STALE_READS as u64,
            "seed": budget.seed,
            "constructs": jrows,
            "mutants": jmuts,
        }),
        csv: t.to_csv(),
    }
}

/// The sync-op mix dimensions of the `D1-diversity` vectors, in order.
pub const D1_MIX_DIMS: [&str; 8] = [
    "locks", "rmws", "barriers", "getsubs", "reduces", "flags", "queues", "reclaim",
];

/// One workload's `D1-diversity` characterization: the normalized sync-op
/// mix plus the normalized contention timeline from `splash4-trace`.
#[derive(Debug, Clone)]
pub struct DiversityPoint {
    /// Workload this point characterizes.
    pub benchmark: BenchmarkId,
    /// Normalized sync-op mix over [`D1_MIX_DIMS`] (sums to 1 unless the
    /// workload performs no sync ops at all).
    pub mix: [f64; 8],
    /// Normalized 16-bin sync-event timeline of the traced lock-free run.
    pub timeline: [f64; 16],
}

impl DiversityPoint {
    /// Characterize `b`: one traced lock-free run (mix + timeline) plus
    /// one lock-based run (the lock dimension only exists under Splash-3).
    pub fn measure(b: BenchmarkId, class: InputClass, threads: usize) -> DiversityPoint {
        let (lf, trace) = record_trace(b, class, SyncMode::LockFree, threads);
        let lb = b.run(class, &SyncEnv::new(SyncMode::LockBased, threads));
        let summary = TraceSummary::from_trace(&trace);
        let flag_idx = ConstructClass::ALL
            .iter()
            .position(|&c| c == ConstructClass::Flag)
            .expect("Flag is a construct class");
        let raw = [
            lb.profile.lock_acquires as f64,
            lf.profile.atomic_rmws as f64,
            lf.profile.barrier_waits as f64,
            lf.profile.getsub_calls as f64,
            lf.profile.reduce_ops as f64,
            // Flag *signals* from the trace: `flag_waits` only counts the
            // timing-dependent slow path, the trace records every set.
            summary.rmws[flag_idx] as f64,
            lf.profile.queue_ops as f64,
            (lf.profile.reclaim_retires + lf.profile.reclaim_scans + lf.profile.reclaim_frees)
                as f64,
        ];
        let total: f64 = raw.iter().sum();
        let mut mix = [0.0; 8];
        if total > 0.0 {
            for (m, r) in mix.iter_mut().zip(raw) {
                *m = r / total;
            }
        }
        let tl_total: f64 = summary.timeline.iter().map(|&v| v as f64).sum();
        let mut timeline = [0.0; 16];
        if tl_total > 0.0 {
            for (t, &v) in timeline.iter_mut().zip(summary.timeline.iter()) {
                *t = v as f64 / tl_total;
            }
        }
        DiversityPoint {
            benchmark: b,
            mix,
            timeline,
        }
    }

    /// Distance to `other`: Euclidean over the mix vectors plus a
    /// half-weighted Euclidean over the contention timelines.
    pub fn distance(&self, other: &DiversityPoint) -> f64 {
        let mix: f64 = self
            .mix
            .iter()
            .zip(other.mix)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let tl: f64 = self
            .timeline
            .iter()
            .zip(other.timeline)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (mix + 0.25 * tl).sqrt()
    }
}

/// `D1-diversity`: Renaissance-style redundancy analysis — per-workload
/// sync-op mix vectors and contention timelines, reduced to a pairwise
/// distance matrix with nearest-neighbor summaries. The suite-extension
/// claim: `cmap` and `stream` occupy mix/timeline regions none of the
/// original kernels do, so each sits farther from its nearest original
/// than any original sits from its own nearest sibling.
fn d1_diversity(ctx: &ExperimentCtx) -> Report {
    let threads = ctx.native_threads.iter().copied().max().unwrap_or(2);
    let points: Vec<DiversityPoint> = ctx
        .benchmarks()
        .map(|b| DiversityPoint::measure(b, ctx.class, threads))
        .collect();

    let n = points.len();
    let mut matrix = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in 0..n {
            matrix[i][j] = points[i].distance(&points[j]);
        }
    }
    let nearest = |i: usize| -> (usize, f64) {
        (0..n)
            .filter(|&j| j != i)
            .map(|j| (j, matrix[i][j]))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least two workloads")
    };

    let mut cols = vec!["benchmark"];
    cols.extend(D1_MIX_DIMS);
    cols.extend(["nearest", "dist"]);
    let mut t = Table::new(cols);
    let mut jrows = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let (nj, nd) = nearest(i);
        let mut row = vec![p.benchmark.name().to_string()];
        row.extend(p.mix.iter().map(|m| format!("{m:.3}")));
        row.push(points[nj].benchmark.name().to_string());
        row.push(format!("{nd:.3}"));
        t.row(row);
        jrows.push(json!({
            "benchmark": p.benchmark.name(),
            "mix": p.mix.to_vec(),
            "timeline": p.timeline.to_vec(),
            "nearest": points[nj].benchmark.name(),
            "nearest_distance": nd,
            "distances": matrix[i].clone(),
        }));
    }

    let mut mt = Table::new(
        std::iter::once("×")
            .chain(points.iter().map(|p| p.benchmark.name()))
            .collect::<Vec<_>>(),
    );
    for (i, p) in points.iter().enumerate() {
        let mut row = vec![p.benchmark.name().to_string()];
        row.extend(matrix[i].iter().map(|d| format!("{d:.2}")));
        mt.row(row);
    }

    let text = format!(
        "{}\npairwise distance matrix (sync-op mix × contention timeline):\n{}",
        t.render(),
        mt.render()
    );
    Report {
        id: "D1-diversity".into(),
        title: format!(
            "Workload diversity: sync-op mix and contention-timeline distances \
             ({} workloads, {} class, {} threads)",
            n,
            ctx.class.label(),
            threads
        ),
        text,
        json: json!({
            "dims": D1_MIX_DIMS.iter().map(|d| d.to_string()).collect::<Vec<String>>(),
            "threads": threads as u64,
            "class": ctx.class.label(),
            "rows": jrows,
        }),
        csv: t.to_csv(),
    }
}

/// Render a construct + mutant checker run as a [`Report`] (shared by
/// `V1-check`, `V2-kernel-check`, and `R1-reclaim`).
fn check_report(
    id: &str,
    title: String,
    budget: &splash4_check::CheckBudget,
    rows: &[splash4_check::ConstructReport],
    muts: &[splash4_check::MutantReport],
) -> Report {
    let mut t = Table::new(vec![
        "construct",
        "property",
        "schedules",
        "executions",
        "verdict",
    ]);
    let mut jrows = Vec::new();
    for r in rows {
        t.row(vec![
            r.construct.to_string(),
            r.property.to_string(),
            r.schedules.to_string(),
            r.executions.to_string(),
            format!("{}", r.verdict),
        ]);
        jrows.push(json!({
            "construct": r.construct,
            "property": r.property,
            "schedules": r.schedules as u64,
            "executions": r.executions as u64,
            "verdict": format!("{}", r.verdict),
            "counterexample": r.counterexample.clone(),
        }));
    }

    let mut mt = Table::new(vec!["mutant", "schedules", "detected", "counterexample"]);
    let mut jmuts = Vec::new();
    for m in muts {
        mt.row(vec![
            m.name.to_string(),
            m.schedules.to_string(),
            if m.detected {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
            m.counterexample.clone(),
        ]);
        jmuts.push(json!({
            "mutant": m.name,
            "description": m.description,
            "schedules": m.schedules as u64,
            "executions": m.executions as u64,
            "detected": m.detected,
            "counterexample": m.counterexample.clone(),
        }));
    }

    let text = format!(
        "{}\nmutation tests (injected bugs the checker must catch):\n{}",
        t.render(),
        mt.render()
    );
    Report {
        id: id.into(),
        title,
        text,
        json: json!({ "min_schedules": budget.min_schedules as u64, "seed": budget.seed, "constructs": jrows, "mutants": jmuts }),
        csv: t.to_csv(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ctx() -> ExperimentCtx {
        ExperimentCtx {
            class: InputClass::Test,
            native_threads: vec![1, 2],
            sim_threads: vec![1, 8, 64],
            snapshot_cores: 16,
            ..ExperimentCtx::default()
        }
    }

    #[test]
    fn model_cache_runs_each_kernel_once_per_class() {
        let ctx = quick_ctx();
        let b = BenchmarkId::all()[0];
        let first = ctx.work_model(b);
        assert_eq!(ctx.models.len(), 1);
        let second = ctx.work_model(b);
        assert_eq!(ctx.models.len(), 1, "second lookup must hit the cache");
        assert_eq!(first, second, "cached model must be returned verbatim");
        // A cloned ctx shares the same cache.
        let cloned = ctx.clone();
        let _ = cloned.work_model(b);
        assert_eq!(ctx.models.len(), 1);
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        assert!(run_experiment("F9-nope", &quick_ctx()).is_err());
    }

    #[test]
    fn t1_lists_all_benchmarks() {
        let r = run_experiment("T1-inputs", &quick_ctx()).unwrap();
        for b in BenchmarkId::all() {
            assert!(r.text.contains(b.name()), "missing {b}");
        }
    }

    #[test]
    fn d1_new_families_are_nearest_neighbor_distinct() {
        let r = run_experiment("D1-diversity", &quick_ctx()).unwrap();
        let rows = r.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), BenchmarkId::all().len());
        let name_of = |row: &splash4_parmacs::Json| row["benchmark"].as_str().unwrap().to_string();
        // The suite's redundancy scale is set by the known near-duplicate
        // original pairs (ocean/ocean-noncont, water-nsquared/water-spatial,
        // lu/lu-noncont): their pairwise distances must be the small ones.
        let dist = |a: &str, b: &str| -> f64 {
            let i = rows.iter().position(|r| name_of(r) == a).unwrap();
            rows[i]["distances"].as_array().unwrap()
                [rows.iter().position(|r| name_of(r) == b).unwrap()]
            .as_f64()
            .unwrap()
        };
        let redundancy_scale = [
            dist("ocean", "ocean-noncont"),
            dist("water-nsquared", "water-spatial"),
            dist("lu", "lu-noncont"),
        ]
        .into_iter()
        .fold(0.0f64, f64::max);
        // The new families must sit outside the redundancy scale relative
        // to EVERY original kernel, not just on average: their minimum
        // distance to any original exceeds the scale (with margin).
        for name in ["cmap", "stream"] {
            let row = rows.iter().find(|r| name_of(r) == name).unwrap();
            let dists = row["distances"].as_array().unwrap();
            let min_to_original = rows
                .iter()
                .enumerate()
                .filter(|(_, other)| {
                    let n = name_of(other);
                    n != "cmap" && n != "stream"
                })
                .map(|(j, _)| dists[j].as_f64().unwrap())
                .fold(f64::INFINITY, f64::min);
            assert!(
                min_to_original > redundancy_scale.max(0.06) * 1.5,
                "{name} clusters with an original kernel: min distance \
                 {min_to_original:.3} vs redundancy scale {redundancy_scale:.3}"
            );
            assert!(
                row["nearest_distance"].as_f64().unwrap() > 0.0,
                "{name} has a zero-distance twin"
            );
        }
    }

    #[test]
    fn sim_experiment_shows_splash4_winning_at_scale() {
        let r = run_experiment("F2-sim-epyc", &quick_ctx()).unwrap();
        let means = r.json["geomeans"].as_array().unwrap();
        let at_1 = means[0].as_f64().unwrap();
        let at_64 = means[2].as_f64().unwrap();
        assert!(
            (0.85..=1.1).contains(&at_1),
            "single core should be near parity, got {at_1}"
        );
        assert!(
            at_64 < 0.8,
            "Splash-4 must win clearly at 64 cores, got {at_64}"
        );
        assert!(at_64 < at_1, "gap should widen with cores");
    }

    #[test]
    fn sensitivity_grid_never_flips_the_conclusion() {
        let r = run_experiment("S1-sensitivity", &quick_ctx()).unwrap();
        for row in r.json["rows"].as_array().unwrap() {
            let g = row["geomean"].as_f64().unwrap();
            assert!(
                g < 0.85,
                "headline must survive parameter scaling, got {g} at {row}"
            );
        }
    }

    #[test]
    fn trace_replay_wins_at_scale_on_both_machines() {
        let r = run_experiment("F8-trace-replay", &quick_ctx()).unwrap();
        let means = r.json["geomeans"].as_array().unwrap();
        assert_eq!(means.len(), 2, "one geomean row per machine preset");
        for g in means {
            let trace = g["trace"].as_array().unwrap();
            let at_64 = trace.last().unwrap().as_f64().unwrap();
            assert!(
                at_64 < 1.0,
                "trace-driven Splash-4/Splash-3 must beat parity at 64 cores on {}, got {at_64}",
                g["machine"]
            );
        }
    }

    #[test]
    fn v1_check_verifies_every_construct_and_catches_every_mutant() {
        let r = run_experiment("V1-check", &quick_ctx()).unwrap();
        let constructs = r.json["constructs"].as_array().unwrap();
        assert!(constructs.len() >= 8, "expected every construct class");
        for row in constructs {
            assert_eq!(
                row["verdict"].as_str().unwrap(),
                "pass",
                "construct failed: {row}"
            );
            assert!(
                row["schedules"].as_f64().unwrap() >= 1000.0,
                "too few schedules: {row}"
            );
        }
        for m in r.json["mutants"].as_array().unwrap() {
            assert_eq!(m["detected"].as_bool(), Some(true), "mutant escaped: {m}");
            assert_ne!(m["counterexample"].as_str(), Some("-"), "no schedule: {m}");
        }
    }

    #[test]
    fn v2_kernel_check_explores_real_kernel_bodies() {
        let r = run_experiment("V2-kernel-check", &quick_ctx()).unwrap();
        let constructs = r.json["constructs"].as_array().unwrap();
        assert!(constructs.len() >= 2, "expected at least two kernel bodies");
        for row in constructs {
            assert_eq!(
                row["verdict"].as_str().unwrap(),
                "pass",
                "kernel scenario failed: {row}"
            );
            assert!(
                row["schedules"].as_f64().unwrap() >= 1000.0,
                "too few schedules: {row}"
            );
        }
        for m in r.json["mutants"].as_array().unwrap() {
            assert_eq!(m["detected"].as_bool(), Some(true), "mutant escaped: {m}");
            assert_ne!(m["counterexample"].as_str(), Some("-"), "no schedule: {m}");
        }
    }

    #[test]
    fn machine_override_flows_into_sim_experiments() {
        let mut ctx = quick_ctx();
        ctx.machine = Some(MachineParams::icelake_like());
        ctx.benchmarks = BenchmarkId::all()[..2].to_vec();
        let r = run_experiment("F2-sim-epyc", &ctx).unwrap();
        assert_eq!(
            r.json["machine"].as_str(),
            Some("icelake-gem5-like"),
            "F2 must simulate the overridden machine"
        );
        let f8 = run_experiment("F8-trace-replay", &ctx).unwrap();
        assert!(
            !f8.text.contains("epyc-7002-like"),
            "F8 must replay only the overridden machine"
        );
    }

    #[test]
    fn w1_weakmem_catches_ordering_mutants_sc_misses() {
        let r = run_experiment("W1-weakmem", &quick_ctx()).unwrap();
        let constructs = r.json["constructs"].as_array().unwrap();
        assert_eq!(constructs.len(), 5, "every weak-memory scenario");
        for row in constructs {
            assert_eq!(
                row["verdict"].as_str().unwrap(),
                "pass",
                "shipped orderings failed under weak memory: {row}"
            );
        }
        let muts = r.json["mutants"].as_array().unwrap();
        assert_eq!(muts.len(), 7, "the full ordering-mutant catalog");
        for m in muts {
            assert_eq!(m["detected"].as_bool(), Some(true), "mutant escaped: {m}");
            assert_eq!(
                m["sc_missed"].as_bool(),
                Some(true),
                "SC found a weak-only bug — scenario not SC-invisible: {m}"
            );
            assert_ne!(m["counterexample"].as_str(), Some("-"), "no schedule: {m}");
        }
        assert!(r.text.contains("sc-missed"), "table carries the SC column");
    }

    #[test]
    fn f9_combining_beats_lockfree_at_scale_but_not_at_low_counts() {
        let r = run_experiment("F9-combining", &quick_ctx()).unwrap();
        let means = r.json["geomeans"].as_array().unwrap();
        let speedups = r.json["combining_vs_lockfree"].as_array().unwrap();
        assert_eq!(means.len(), 3);
        let at_1 = means[0].as_f64().unwrap();
        let at_64 = means[2].as_f64().unwrap();
        assert!(
            (0.9..=1.1).contains(&at_1),
            "no contention at one core: combining should be near parity, got {at_1}"
        );
        assert!(
            at_64 < 1.0,
            "combining must beat raw fetch_add at 64 cores, got {at_64}"
        );
        assert!(
            speedups[2].as_f64().unwrap() > 1.0,
            "combining_vs_lockfree speedup must exceed 1.0 at the top core count"
        );
        assert!(
            !r.json["crossover_cores"].is_null(),
            "the sweep must find a crossover core count"
        );
    }

    #[test]
    fn c1_combining_verifies_every_port_and_catches_every_mutant() {
        let r = run_experiment("C1-combining", &quick_ctx()).unwrap();
        let constructs = r.json["constructs"].as_array().unwrap();
        assert_eq!(constructs.len(), 5, "every combining-ported construct");
        for row in constructs {
            assert_eq!(
                row["verdict"].as_str().unwrap(),
                "pass",
                "combining scenario failed: {row}"
            );
            assert!(
                row["schedules"].as_f64().unwrap() >= 1000.0,
                "too few schedules: {row}"
            );
        }
        let muts = r.json["mutants"].as_array().unwrap();
        assert_eq!(muts.len(), 4, "the full combining mutant catalog");
        for m in muts {
            assert_eq!(m["detected"].as_bool(), Some(true), "mutant escaped: {m}");
            assert_ne!(m["counterexample"].as_str(), Some("-"), "no schedule: {m}");
        }
    }

    #[test]
    fn r1_reclaim_verifies_pools_and_catches_reclamation_mutants() {
        let r = run_experiment("R1-reclaim", &quick_ctx()).unwrap();
        let constructs = r.json["constructs"].as_array().unwrap();
        assert_eq!(
            constructs.len(),
            4,
            "two pools and two reclamation protocols"
        );
        for row in constructs {
            assert_eq!(
                row["verdict"].as_str().unwrap(),
                "pass",
                "reclaim scenario failed: {row}"
            );
            assert!(
                row["schedules"].as_f64().unwrap() >= 1000.0,
                "too few schedules: {row}"
            );
        }
        let muts = r.json["mutants"].as_array().unwrap();
        assert_eq!(muts.len(), 5, "the full reclamation mutant catalog");
        for m in muts {
            assert_eq!(m["detected"].as_bool(), Some(true), "mutant escaped: {m}");
            assert_ne!(m["counterexample"].as_str(), Some("-"), "no schedule: {m}");
        }
    }

    #[test]
    fn experiments_honor_the_benchmark_filter() {
        let ctx = ExperimentCtx {
            benchmarks: vec![BenchmarkId::Fft, BenchmarkId::Radix],
            ..quick_ctx()
        };
        let r = run_experiment("T1-inputs", &ctx).unwrap();
        assert!(r.text.contains("fft") && r.text.contains("radix"));
        assert!(
            !r.text.contains("barnes"),
            "filtered workload leaked:\n{}",
            r.text
        );
        assert_eq!(r.json["rows"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn epyc_gap_exceeds_icelake_gap() {
        // Paper headline: −52% on EPYC vs −34% on Ice Lake at 64 threads.
        let ctx = quick_ctx();
        let epyc = run_experiment("F2-sim-epyc", &ctx).unwrap();
        let ice = run_experiment("F3-sim-icelake", &ctx).unwrap();
        let e = epyc.json["geomeans"].as_array().unwrap()[2]
            .as_f64()
            .unwrap();
        let i = ice.json["geomeans"].as_array().unwrap()[2]
            .as_f64()
            .unwrap();
        assert!(
            e < i,
            "EPYC-like preset should show the larger Splash-4 win: {e} vs {i}"
        );
    }
}
