//! The benchmark registry: one entry per suite workload.

use splash4_kernels::{
    barnes, cholesky, fft, fmm, lu, ocean, radiosity, radix, raytrace, volrend, water_nsq,
    water_sp, InputClass, KernelResult,
};
use splash4_parmacs::SyncEnv;
use std::fmt;

/// Identifier of a suite workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BenchmarkId {
    Barnes,
    Cholesky,
    Fft,
    Fmm,
    Lu,
    LuNoncont,
    Ocean,
    OceanNoncont,
    Radiosity,
    Radix,
    Raytrace,
    Volrend,
    WaterNsquared,
    WaterSpatial,
}

impl BenchmarkId {
    /// All workloads in suite order.
    pub const ALL: [BenchmarkId; 14] = [
        BenchmarkId::Barnes,
        BenchmarkId::Cholesky,
        BenchmarkId::Fft,
        BenchmarkId::Fmm,
        BenchmarkId::Lu,
        BenchmarkId::LuNoncont,
        BenchmarkId::Ocean,
        BenchmarkId::OceanNoncont,
        BenchmarkId::Radiosity,
        BenchmarkId::Radix,
        BenchmarkId::Raytrace,
        BenchmarkId::Volrend,
        BenchmarkId::WaterNsquared,
        BenchmarkId::WaterSpatial,
    ];

    /// Canonical suite name.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Barnes => "barnes",
            BenchmarkId::Cholesky => "cholesky",
            BenchmarkId::Fft => "fft",
            BenchmarkId::Fmm => "fmm",
            BenchmarkId::Lu => "lu",
            BenchmarkId::LuNoncont => "lu-noncont",
            BenchmarkId::Ocean => "ocean",
            BenchmarkId::OceanNoncont => "ocean-noncont",
            BenchmarkId::Radiosity => "radiosity",
            BenchmarkId::Radix => "radix",
            BenchmarkId::Raytrace => "raytrace",
            BenchmarkId::Volrend => "volrend",
            BenchmarkId::WaterNsquared => "water-nsquared",
            BenchmarkId::WaterSpatial => "water-spatial",
        }
    }

    /// Parse a suite name.
    pub fn from_name(s: &str) -> Option<BenchmarkId> {
        BenchmarkId::ALL.into_iter().find(|b| b.name() == s)
    }

    /// Human description of the configured input for `class` (the `T1-inputs`
    /// table content).
    pub fn input_description(self, class: InputClass) -> String {
        match self {
            BenchmarkId::Barnes => {
                let c = barnes::BarnesConfig::class(class);
                format!("{} bodies, {} steps, θ={}", c.n, c.steps, c.theta)
            }
            BenchmarkId::Cholesky => {
                let c = cholesky::CholeskyConfig::class(class);
                format!("{0}×{0} SPD matrix, {1}×{1} blocks", c.n, c.block)
            }
            BenchmarkId::Fft => {
                let c = fft::FftConfig::class(class);
                format!("{} complex points (√n={})", c.n(), c.m)
            }
            BenchmarkId::Fmm => {
                let c = fmm::FmmConfig::class(class);
                format!("{} particles, depth {}, p={}", c.n, c.levels, c.order)
            }
            BenchmarkId::Lu => {
                let c = lu::LuConfig::class(class);
                format!("{0}×{0} matrix, {1}×{1} blocks", c.n, c.block)
            }
            BenchmarkId::LuNoncont => {
                let c = lu::LuConfig::class_noncont(class);
                format!("{0}×{0} matrix, {1}×{1} blocks, row-major", c.n, c.block)
            }
            BenchmarkId::Ocean => {
                let c = ocean::OceanConfig::class(class);
                format!("{0}×{0} grid, tol {1:.0e}", c.n, c.tolerance)
            }
            BenchmarkId::OceanNoncont => {
                let c = ocean::OceanConfig::class_noncont(class);
                format!("{0}×{0} grid, tol {1:.0e}, row arrays", c.n, c.tolerance)
            }
            BenchmarkId::Radiosity => {
                let c = radiosity::RadiosityConfig::class(class);
                format!("{} patches (6 walls × {}²)", c.patches(), c.m)
            }
            BenchmarkId::Radix => {
                let c = radix::RadixConfig::class(class);
                format!("{} keys, radix {}", c.n, c.buckets())
            }
            BenchmarkId::Raytrace => {
                let c = raytrace::RaytraceConfig::class(class);
                format!("{0}×{0} image, depth {1}", c.size, c.max_depth)
            }
            BenchmarkId::Volrend => {
                let c = volrend::VolrendConfig::class(class);
                format!("{0}³ volume → {1}² image", c.volume, c.image)
            }
            BenchmarkId::WaterNsquared => {
                let c = water_nsq::WaterNsqConfig::class(class);
                format!("{} molecules, {} steps", c.n, c.steps)
            }
            BenchmarkId::WaterSpatial => {
                let c = water_sp::WaterSpConfig::class(class);
                format!("{} molecules, {} steps, cell lists", c.n, c.steps)
            }
        }
    }

    /// Run the workload at `class` under `env`.
    pub fn run(self, class: InputClass, env: &SyncEnv) -> KernelResult {
        match self {
            BenchmarkId::Barnes => barnes::run(&barnes::BarnesConfig::class(class), env),
            BenchmarkId::Cholesky => cholesky::run(&cholesky::CholeskyConfig::class(class), env),
            BenchmarkId::Fft => fft::run(&fft::FftConfig::class(class), env),
            BenchmarkId::Fmm => fmm::run(&fmm::FmmConfig::class(class), env),
            BenchmarkId::Lu => lu::run(&lu::LuConfig::class(class), env),
            BenchmarkId::LuNoncont => lu::run(&lu::LuConfig::class_noncont(class), env),
            BenchmarkId::Ocean => ocean::run(&ocean::OceanConfig::class(class), env),
            BenchmarkId::OceanNoncont => ocean::run(&ocean::OceanConfig::class_noncont(class), env),
            BenchmarkId::Radiosity => {
                radiosity::run(&radiosity::RadiosityConfig::class(class), env)
            }
            BenchmarkId::Radix => radix::run(&radix::RadixConfig::class(class), env),
            BenchmarkId::Raytrace => raytrace::run(&raytrace::RaytraceConfig::class(class), env),
            BenchmarkId::Volrend => volrend::run(&volrend::VolrendConfig::class(class), env),
            BenchmarkId::WaterNsquared => {
                water_nsq::run(&water_nsq::WaterNsqConfig::class(class), env)
            }
            BenchmarkId::WaterSpatial => water_sp::run(&water_sp::WaterSpConfig::class(class), env),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splash4_parmacs::SyncMode;

    #[test]
    fn names_round_trip() {
        for b in BenchmarkId::ALL {
            assert_eq!(BenchmarkId::from_name(b.name()), Some(b));
        }
        assert_eq!(BenchmarkId::from_name("doom"), None);
    }

    #[test]
    fn descriptions_are_nonempty_for_all_classes() {
        for b in BenchmarkId::ALL {
            for c in InputClass::ALL {
                assert!(!b.input_description(c).is_empty());
            }
        }
    }

    #[test]
    fn every_benchmark_runs_and_validates_at_test_class() {
        for b in BenchmarkId::ALL {
            let env = SyncEnv::new(SyncMode::LockFree, 2);
            let r = b.run(InputClass::Test, &env);
            assert!(r.validated, "{b} failed validation");
            assert!(!r.work.phases.is_empty(), "{b} must export a work model");
        }
    }
}
