//! The benchmark registry: one entry per suite workload.
//!
//! Since the kernels crate grew its own [`Workload`] trait and flat
//! [`SUITE`] table, the registry is a thin veneer: `BenchmarkId` stays the
//! harness's copyable handle (enum discriminants index straight into the
//! table), and every query — name, input description, run — delegates to
//! the workload object. Adding a 15th workload means appending one enum
//! variant here and one table line in the kernels crate; there are no
//! per-workload `match` arms left to keep in sync.

use splash4_kernels::{workload, InputClass, KernelResult, Workload, SUITE};
use splash4_parmacs::SyncEnv;
use std::fmt;

/// Identifier of a suite workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BenchmarkId {
    Barnes,
    Cholesky,
    Fft,
    Fmm,
    Lu,
    LuNoncont,
    Ocean,
    OceanNoncont,
    Radiosity,
    Radix,
    Raytrace,
    Volrend,
    WaterNsquared,
    WaterSpatial,
}

impl BenchmarkId {
    /// All workloads in suite order.
    pub const ALL: [BenchmarkId; 14] = [
        BenchmarkId::Barnes,
        BenchmarkId::Cholesky,
        BenchmarkId::Fft,
        BenchmarkId::Fmm,
        BenchmarkId::Lu,
        BenchmarkId::LuNoncont,
        BenchmarkId::Ocean,
        BenchmarkId::OceanNoncont,
        BenchmarkId::Radiosity,
        BenchmarkId::Radix,
        BenchmarkId::Raytrace,
        BenchmarkId::Volrend,
        BenchmarkId::WaterNsquared,
        BenchmarkId::WaterSpatial,
    ];

    /// The [`Workload`] object behind this id (discriminants are the
    /// [`SUITE`] indices; a test pins the correspondence).
    pub fn workload(self) -> &'static (dyn Workload + Send + Sync) {
        SUITE[self as usize]
    }

    /// Canonical suite name.
    pub fn name(self) -> &'static str {
        self.workload().name()
    }

    /// Parse a suite name. Matching is lenient: case-insensitive, with `_`
    /// and `-` interchangeable (`water_nsquared` ≡ `WATER-NSQUARED`).
    pub fn from_name(s: &str) -> Option<BenchmarkId> {
        let w = workload::find(s)?;
        SUITE
            .iter()
            .position(|entry| std::ptr::eq(*entry, w))
            .map(|i| BenchmarkId::ALL[i])
    }

    /// Human description of the configured input for `class` (the `T1-inputs`
    /// table content).
    pub fn input_description(self, class: InputClass) -> String {
        self.workload().input_description(class)
    }

    /// Run the workload at `class` under `env`.
    pub fn run(self, class: InputClass, env: &SyncEnv) -> KernelResult {
        self.workload().run(class, env)
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splash4_parmacs::SyncMode;

    #[test]
    fn discriminants_index_the_suite_table() {
        // `workload()` relies on enum order == SUITE order; pin it.
        assert_eq!(BenchmarkId::ALL.len(), SUITE.len());
        for (i, b) in BenchmarkId::ALL.into_iter().enumerate() {
            assert_eq!(b as usize, i);
            assert_eq!(b.name(), SUITE[i].name(), "table order drifted at {i}");
        }
    }

    #[test]
    fn names_round_trip() {
        for b in BenchmarkId::ALL {
            assert_eq!(BenchmarkId::from_name(b.name()), Some(b));
        }
        assert_eq!(BenchmarkId::from_name("doom"), None);
    }

    #[test]
    fn from_name_accepts_aliases() {
        for (alias, want) in [
            ("water_nsquared", BenchmarkId::WaterNsquared),
            ("WATER-NSQUARED", BenchmarkId::WaterNsquared),
            ("Lu_Noncont", BenchmarkId::LuNoncont),
            ("FFT", BenchmarkId::Fft),
            ("Ocean-Noncont", BenchmarkId::OceanNoncont),
        ] {
            assert_eq!(BenchmarkId::from_name(alias), Some(want), "{alias}");
        }
    }

    #[test]
    fn descriptions_are_nonempty_for_all_classes() {
        for b in BenchmarkId::ALL {
            for c in InputClass::ALL {
                assert!(!b.input_description(c).is_empty());
            }
        }
    }

    #[test]
    fn every_benchmark_runs_and_validates_at_test_class() {
        for b in BenchmarkId::ALL {
            let env = SyncEnv::new(SyncMode::LockFree, 2);
            let r = b.run(InputClass::Test, &env);
            assert!(r.validated, "{b} failed validation");
            assert!(!r.work.phases.is_empty(), "{b} must export a work model");
        }
    }
}
