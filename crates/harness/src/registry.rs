//! The benchmark registry: one handle per registered suite workload.
//!
//! Since the kernels crate grew its own [`Workload`] trait and extensible
//! [`workload`] registry, the registry is a thin veneer: [`BenchmarkId`]
//! is the harness's copyable handle — a registry *index*, not a pinned
//! enum — and every query (name, input description, run) delegates to the
//! workload object. The suite count appears in exactly one place (the
//! kernels-crate registry): `BenchmarkId::all()` iterates whatever is
//! registered, so a new workload — in-tree or registered at startup via
//! [`workload::register`] — flows through the CLI filters, stats columns,
//! trace attribution, sim memoization, check scenarios and the serve
//! dispatcher without touching this file. The named associated constants
//! below are ergonomic aliases for the built-in suite (`Benchmark::Radix`
//! keeps compiling), pinned to the registry order by a test.

use splash4_kernels::{workload, InputClass, KernelResult, Workload};
use splash4_parmacs::SyncEnv;
use std::fmt;

/// Identifier of a registered suite workload (a stable registry index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BenchmarkId(usize);

#[allow(non_upper_case_globals, missing_docs)]
impl BenchmarkId {
    pub const Barnes: BenchmarkId = BenchmarkId(0);
    pub const Cholesky: BenchmarkId = BenchmarkId(1);
    pub const Fft: BenchmarkId = BenchmarkId(2);
    pub const Fmm: BenchmarkId = BenchmarkId(3);
    pub const Lu: BenchmarkId = BenchmarkId(4);
    pub const LuNoncont: BenchmarkId = BenchmarkId(5);
    pub const Ocean: BenchmarkId = BenchmarkId(6);
    pub const OceanNoncont: BenchmarkId = BenchmarkId(7);
    pub const Radiosity: BenchmarkId = BenchmarkId(8);
    pub const Radix: BenchmarkId = BenchmarkId(9);
    pub const Raytrace: BenchmarkId = BenchmarkId(10);
    pub const Volrend: BenchmarkId = BenchmarkId(11);
    pub const WaterNsquared: BenchmarkId = BenchmarkId(12);
    pub const WaterSpatial: BenchmarkId = BenchmarkId(13);
    pub const Cmap: BenchmarkId = BenchmarkId(14);
    pub const Stream: BenchmarkId = BenchmarkId(15);
}

impl BenchmarkId {
    /// Every registered workload, in registry order. Unlike the old fixed
    /// `ALL` array this reflects runtime [`workload::register`] calls.
    pub fn all() -> Vec<BenchmarkId> {
        (0..workload::len()).map(BenchmarkId).collect()
    }

    /// This workload's registry index (stable for the process lifetime).
    pub fn index(self) -> usize {
        self.0
    }

    /// The [`Workload`] object behind this id.
    ///
    /// # Panics
    /// Panics if the id does not come from [`BenchmarkId::all`] /
    /// [`BenchmarkId::from_name`] (an out-of-range index).
    pub fn workload(self) -> &'static (dyn Workload + Send + Sync) {
        workload::get(self.0)
            .unwrap_or_else(|| panic!("benchmark index {} out of registry range", self.0))
    }

    /// Canonical suite name.
    pub fn name(self) -> &'static str {
        self.workload().name()
    }

    /// Parse a suite name. Matching is lenient: case-insensitive, with `_`
    /// and `-` interchangeable (`water_nsquared` ≡ `WATER-NSQUARED`).
    pub fn from_name(s: &str) -> Option<BenchmarkId> {
        workload::find_index(s).map(BenchmarkId)
    }

    /// Human description of the configured input for `class` (the `T1-inputs`
    /// table content).
    pub fn input_description(self, class: InputClass) -> String {
        self.workload().input_description(class)
    }

    /// Run the workload at `class` under `env`.
    pub fn run(self, class: InputClass, env: &SyncEnv) -> KernelResult {
        self.workload().run(class, env)
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splash4_parmacs::SyncMode;

    #[test]
    fn named_constants_match_registry_order() {
        // The ergonomic aliases must agree with the built-in registration
        // order; pin it.
        let pinned = [
            (BenchmarkId::Barnes, "barnes"),
            (BenchmarkId::Cholesky, "cholesky"),
            (BenchmarkId::Fft, "fft"),
            (BenchmarkId::Fmm, "fmm"),
            (BenchmarkId::Lu, "lu"),
            (BenchmarkId::LuNoncont, "lu-noncont"),
            (BenchmarkId::Ocean, "ocean"),
            (BenchmarkId::OceanNoncont, "ocean-noncont"),
            (BenchmarkId::Radiosity, "radiosity"),
            (BenchmarkId::Radix, "radix"),
            (BenchmarkId::Raytrace, "raytrace"),
            (BenchmarkId::Volrend, "volrend"),
            (BenchmarkId::WaterNsquared, "water-nsquared"),
            (BenchmarkId::WaterSpatial, "water-spatial"),
            (BenchmarkId::Cmap, "cmap"),
            (BenchmarkId::Stream, "stream"),
        ];
        for (b, name) in pinned {
            assert_eq!(b.name(), name, "alias order drifted at index {}", b.index());
        }
        assert!(BenchmarkId::all().len() >= pinned.len());
    }

    #[test]
    fn ids_index_the_registry() {
        for (i, b) in BenchmarkId::all().into_iter().enumerate() {
            assert_eq!(b.index(), i);
            assert_eq!(b.name(), workload::get(i).unwrap().name());
        }
    }

    #[test]
    fn names_round_trip() {
        for b in BenchmarkId::all() {
            assert_eq!(BenchmarkId::from_name(b.name()), Some(b));
        }
        assert_eq!(BenchmarkId::from_name("doom"), None);
    }

    #[test]
    fn from_name_accepts_aliases() {
        for (alias, want) in [
            ("water_nsquared", BenchmarkId::WaterNsquared),
            ("WATER-NSQUARED", BenchmarkId::WaterNsquared),
            ("Lu_Noncont", BenchmarkId::LuNoncont),
            ("FFT", BenchmarkId::Fft),
            ("Ocean-Noncont", BenchmarkId::OceanNoncont),
            ("CMap", BenchmarkId::Cmap),
            ("STREAM", BenchmarkId::Stream),
        ] {
            assert_eq!(BenchmarkId::from_name(alias), Some(want), "{alias}");
        }
    }

    #[test]
    fn descriptions_are_nonempty_for_all_classes() {
        for b in BenchmarkId::all() {
            for c in InputClass::ALL {
                assert!(!b.input_description(c).is_empty());
            }
        }
    }

    #[test]
    fn every_benchmark_runs_and_validates_at_test_class() {
        for b in BenchmarkId::all() {
            let env = SyncEnv::new(SyncMode::LockFree, 2);
            let r = b.run(InputClass::Test, &env);
            assert!(r.validated, "{b} failed validation");
            assert!(!r.work.phases.is_empty(), "{b} must export a work model");
        }
    }
}
