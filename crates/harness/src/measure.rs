//! Statistical measurement layer for the perf bench.
//!
//! PR 3's harness reported single medians, which is why CI could only archive
//! `BENCH_results.json` instead of gating on it: a point estimate carries no
//! information about how much of a delta is noise. This module supplies the
//! missing machinery (see `DESIGN.md` §11 "Measurement methodology"):
//!
//! - **adaptive repetition** ([`measure_adaptive`]): a benchmark closure is
//!   re-run until the bootstrap 95 % confidence interval of its median is
//!   tighter than a target fraction of the median, or a repetition cap is
//!   hit — fast benchmarks on quiet hosts stop early, noisy ones buy more
//!   repetitions automatically;
//! - **outlier-robust summaries** ([`Summary`]): median + MAD-based robust
//!   CV instead of mean + stddev, so one preempted repetition cannot drag
//!   the estimate;
//! - **deterministic bootstrap** ([`bootstrap_ci`]): percentile bootstrap of
//!   the median resampled with [`SmallRng`], so the same samples always
//!   yield the same interval (pinned by unit tests);
//! - **geomean aggregation** ([`geomean_ratios`]): cross-benchmark ratios
//!   combine multiplicatively, matching the paper's normalized-time
//!   geomeans.
//!
//! [`Summary`] round-trips through `parmacs::json` as the per-metric
//! `{median, ci_lo, ci_hi, reps, cv, samples}` object of the
//! `splash4-bench-v2` schema; `compare.rs` consumes those objects for the
//! noise-aware regression gate.

use splash4_parmacs::rng::SmallRng;
use splash4_parmacs::{json, Json};
use std::time::Instant;

/// Bootstrap resampling seed. Fixed so every bench run (and every test) draws
/// the same resampling plan; varying it only perturbs CI endpoints within
/// their own Monte-Carlo error.
pub const BOOTSTRAP_SEED: u64 = 0x0591_A544_C0DE;

/// Confidence level of every interval this module produces.
pub const CONFIDENCE: f64 = 0.95;

/// Tuning knobs for one adaptive measurement.
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Repetitions always taken before the stopping rule is consulted.
    pub min_reps: usize,
    /// Hard repetition cap (the stopping rule may leave the CI wider than
    /// the target on very noisy hosts; the summary records what it got).
    pub max_reps: usize,
    /// Stop once the CI half-width falls below this fraction of the median.
    pub target_rci: f64,
    /// Bootstrap resamples per interval.
    pub resamples: usize,
}

impl MeasureConfig {
    /// Full-size configuration (local perf tracking).
    pub fn full() -> MeasureConfig {
        MeasureConfig {
            min_reps: 5,
            max_reps: 15,
            target_rci: 0.05,
            resamples: 600,
        }
    }

    /// CI-sized configuration: fewer reps, looser target.
    pub fn quick() -> MeasureConfig {
        MeasureConfig {
            min_reps: 3,
            max_reps: 7,
            target_rci: 0.15,
            resamples: 300,
        }
    }
}

/// Outlier-robust summary of one metric's repetition samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Median of the samples.
    pub median: f64,
    /// Lower bound of the bootstrap 95 % CI of the median.
    pub ci_lo: f64,
    /// Upper bound of the bootstrap 95 % CI of the median.
    pub ci_hi: f64,
    /// Number of measured repetitions behind the summary.
    pub reps: usize,
    /// Robust coefficient of variation: `1.4826 · MAD / median` (the 1.4826
    /// factor makes MAD consistent with σ under normality).
    pub cv: f64,
    /// The raw per-repetition samples, kept for auditability and so a later
    /// reader can re-run the bootstrap on the recorded data.
    pub samples: Vec<f64>,
}

impl Summary {
    /// Summarize a non-empty sample set: median, MAD-based CV, and a
    /// deterministic bootstrap CI of the median.
    ///
    /// # Panics
    /// Panics on an empty slice or NaN samples.
    pub fn from_samples(samples: &[f64], resamples: usize) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let med = median(samples);
        let (ci_lo, ci_hi) = bootstrap_ci(samples, resamples, BOOTSTRAP_SEED);
        let m = mad(samples, med);
        Summary {
            median: med,
            ci_lo,
            ci_hi,
            reps: samples.len(),
            cv: if med.abs() > 0.0 {
                1.4826 * m / med.abs()
            } else {
                0.0
            },
            samples: samples.to_vec(),
        }
    }

    /// A summary with a degenerate (zero-width) interval: what a legacy v1
    /// point estimate decodes to before the compare layer widens it by the
    /// assumed legacy noise floor.
    pub fn point(value: f64) -> Summary {
        Summary {
            median: value,
            ci_lo: value,
            ci_hi: value,
            reps: 1,
            cv: 0.0,
            samples: vec![value],
        }
    }

    /// CI half-width as a fraction of the median (`inf` if the median is 0).
    pub fn relative_half_width(&self) -> f64 {
        let hw = (self.ci_hi - self.ci_lo) / 2.0;
        if self.median.abs() > 0.0 {
            hw / self.median.abs()
        } else {
            f64::INFINITY
        }
    }

    /// Convert a seconds summary into an ops/sec rate summary for
    /// `total_ops` operations. The interval endpoints swap (more seconds =
    /// fewer ops/sec); per-sample rates are recomputed so the recorded
    /// samples stay consistent with the summarized unit.
    pub fn to_rate(&self, total_ops: u64) -> Summary {
        let inv = |secs: f64| total_ops as f64 / secs.max(1e-12);
        Summary {
            median: inv(self.median),
            ci_lo: inv(self.ci_hi),
            ci_hi: inv(self.ci_lo),
            reps: self.reps,
            cv: self.cv,
            samples: self.samples.iter().map(|&s| inv(s)).collect(),
        }
    }

    /// Linearly rescale into a different unit (e.g. seconds per timed pass
    /// into nanoseconds per operation): median, interval endpoints, and the
    /// recorded samples all multiply by `k`. The factor must be positive so
    /// the interval orientation is preserved.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite factor.
    pub fn scale(&self, k: f64) -> Summary {
        assert!(k.is_finite() && k > 0.0, "scale factor must be positive");
        Summary {
            median: self.median * k,
            ci_lo: self.ci_lo * k,
            ci_hi: self.ci_hi * k,
            reps: self.reps,
            cv: self.cv,
            samples: self.samples.iter().map(|&s| s * k).collect(),
        }
    }

    /// Ratio of two summaries (`self / denom`) with a conservative interval:
    /// the ratio CI spans the extreme quotients of the two input CIs. Not as
    /// tight as a paired per-repetition ratio (use [`Summary::from_samples`]
    /// on per-rep ratios when pairing is possible) but always valid.
    pub fn ratio_vs(&self, denom: &Summary) -> Summary {
        let lo = self.ci_lo / denom.ci_hi.max(1e-300);
        let hi = self.ci_hi / denom.ci_lo.max(1e-300);
        let med = self.median / denom.median.max(1e-300);
        Summary {
            median: med,
            ci_lo: lo,
            ci_hi: hi,
            reps: self.reps.min(denom.reps),
            cv: (self.cv * self.cv + denom.cv * denom.cv).sqrt(),
            // A derived ratio has no per-repetition samples of its own (the
            // two sides were not paired); record none rather than fake one.
            samples: Vec::new(),
        }
    }

    /// Encode as the v2 per-metric JSON object.
    pub fn to_json(&self) -> Json {
        json!({
            "median": self.median,
            "ci_lo": self.ci_lo,
            "ci_hi": self.ci_hi,
            "reps": self.reps as u64,
            "cv": self.cv,
            "samples": Json::from_f64s(&self.samples),
        })
    }

    /// Decode a v2 per-metric object. The `samples` array is optional (a
    /// hand-written candidate document may omit it); every other field is
    /// required and validated for basic sanity.
    pub fn from_json(v: &Json) -> Result<Summary, String> {
        let num = |key: &str| {
            v[key]
                .as_f64()
                .ok_or_else(|| format!("summary field `{key}` missing or not a number"))
        };
        let median = num("median")?;
        let ci_lo = num("ci_lo")?;
        let ci_hi = num("ci_hi")?;
        let reps = v["reps"]
            .as_u64()
            .ok_or("summary field `reps` missing or not a count")? as usize;
        let cv = num("cv")?;
        let samples = match &v["samples"] {
            Json::Null => Vec::new(),
            other => other
                .as_f64_array()
                .ok_or("summary field `samples` not a float array")?,
        };
        let s = Summary {
            median,
            ci_lo,
            ci_hi,
            reps,
            cv,
            samples,
        };
        s.check()?;
        Ok(s)
    }

    /// Structural invariants every summary must satisfy (`--validate` runs
    /// this over whole documents).
    pub fn check(&self) -> Result<(), String> {
        if !(self.median.is_finite() && self.ci_lo.is_finite() && self.ci_hi.is_finite()) {
            return Err("summary has non-finite statistics".into());
        }
        if !(self.ci_lo <= self.median && self.median <= self.ci_hi) {
            return Err(format!(
                "summary CI [{}, {}] does not bracket median {}",
                self.ci_lo, self.ci_hi, self.median
            ));
        }
        if self.reps == 0 {
            return Err("summary has zero repetitions".into());
        }
        if !(self.cv.is_finite() && self.cv >= 0.0) {
            return Err(format!("summary cv {} invalid", self.cv));
        }
        if !self.samples.is_empty() && self.samples.len() != self.reps {
            return Err(format!(
                "summary records {} samples but reps={}",
                self.samples.len(),
                self.reps
            ));
        }
        Ok(())
    }
}

/// Median of a non-empty slice (midpoint average for even lengths).
///
/// # Panics
/// Panics on an empty slice or NaN samples.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of zero samples");
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation around `center`.
pub fn mad(samples: &[f64], center: f64) -> f64 {
    let devs: Vec<f64> = samples.iter().map(|&s| (s - center).abs()).collect();
    median(&devs)
}

/// Percentile bootstrap 95 % CI of the median: `resamples` draws with
/// replacement, each summarized by its median, interval at the 2.5th/97.5th
/// percentiles of those medians. Deterministic for a given `(samples,
/// resamples, seed)` triple — resampling indices come from [`SmallRng`].
pub fn bootstrap_ci(samples: &[f64], resamples: usize, seed: u64) -> (f64, f64) {
    assert!(!samples.is_empty(), "bootstrap of zero samples");
    if samples.len() == 1 {
        return (samples[0], samples[0]);
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ (samples.len() as u64).rotate_left(17));
    let n = samples.len();
    let mut medians = Vec::with_capacity(resamples.max(1));
    let mut draw = vec![0.0f64; n];
    for _ in 0..resamples.max(1) {
        for slot in draw.iter_mut() {
            *slot = samples[rng.gen_range(0..n)];
        }
        medians.push(median(&draw));
    }
    medians.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN median"));
    let alpha = (1.0 - CONFIDENCE) / 2.0;
    let pick = |q: f64| {
        let idx = (q * (medians.len() - 1) as f64).round() as usize;
        medians[idx.min(medians.len() - 1)]
    };
    (pick(alpha), pick(1.0 - alpha))
}

/// Adaptively sample `sample` (one call = one measured repetition, returning
/// the measured value) until the bootstrap CI of the median is tighter than
/// `cfg.target_rci` or `cfg.max_reps` repetitions have run, then summarize.
pub fn measure_adaptive(cfg: &MeasureConfig, mut sample: impl FnMut() -> f64) -> Summary {
    let mut samples = Vec::with_capacity(cfg.min_reps);
    loop {
        samples.push(sample());
        if samples.len() < cfg.min_reps.max(2) {
            continue;
        }
        let s = Summary::from_samples(&samples, cfg.resamples);
        if s.relative_half_width() <= cfg.target_rci || samples.len() >= cfg.max_reps.max(1) {
            return s;
        }
    }
}

/// [`measure_adaptive`] specialized to wall-clock timing of a closure, in
/// seconds per call, with one untimed warmup pass (faults pages, warms
/// caches, resolves lazy init).
pub fn time_adaptive(cfg: &MeasureConfig, mut f: impl FnMut()) -> Summary {
    f();
    measure_adaptive(cfg, || {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_secs_f64()
    })
}

/// Geometric mean of a set of ratios (the right aggregate for normalized
/// quantities: a 2× gain and a 2× loss cancel to 1.0). Ignores non-positive
/// entries; NaN when none remain.
pub fn geomean_ratios(ratios: &[f64]) -> f64 {
    crate::tables::geomean(ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust() {
        let clean = [10.0, 11.0, 9.0, 10.5, 9.5];
        let outlier = [10.0, 11.0, 9.0, 10.5, 500.0];
        assert_eq!(median(&clean), 10.0);
        assert_eq!(median(&outlier), 10.5);
        assert!(
            mad(&outlier, median(&outlier)) < 2.0,
            "MAD shrugs off the outlier"
        );
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn bootstrap_is_deterministic_under_seeding() {
        let samples = [1.0, 1.1, 0.9, 1.05, 0.95, 1.2, 0.85];
        let a = bootstrap_ci(&samples, 400, BOOTSTRAP_SEED);
        let b = bootstrap_ci(&samples, 400, BOOTSTRAP_SEED);
        assert_eq!(a, b, "same seed, same interval");
        // (A different seed draws a different resampling plan, but with few
        // samples the percentile endpoints may still coincide — determinism,
        // not divergence, is the property the gate relies on.)
        // Interval brackets the median and stays inside the sample range.
        let med = median(&samples);
        assert!(a.0 <= med && med <= a.1);
        assert!(a.0 >= 0.85 && a.1 <= 1.2);
    }

    #[test]
    fn bootstrap_narrows_with_tighter_samples() {
        let noisy = [1.0, 2.0, 0.5, 1.8, 0.7, 1.4, 0.9, 1.6];
        let tight = [1.0, 1.01, 0.99, 1.02, 0.98, 1.0, 1.01, 0.99];
        let (nl, nh) = bootstrap_ci(&noisy, 400, BOOTSTRAP_SEED);
        let (tl, th) = bootstrap_ci(&tight, 400, BOOTSTRAP_SEED);
        assert!(th - tl < nh - nl);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = Summary::from_samples(&[3.0, 3.2, 2.9, 3.1, 3.05], 300);
        let decoded = Summary::from_json(&s.to_json()).expect("decodes");
        assert_eq!(decoded, s);
        s.check().expect("self-consistent");
        // Omitted samples array falls back to the median.
        let bare = json!({
            "median": 2.0, "ci_lo": 1.5, "ci_hi": 2.5, "reps": 4u64, "cv": 0.1,
        });
        let d = Summary::from_json(&bare).expect("samples optional");
        assert!(d.samples.is_empty());
        // Corrupt documents are rejected, not guessed at.
        let bad = json!({
            "median": 2.0, "ci_lo": 2.5, "ci_hi": 1.5, "reps": 4u64, "cv": 0.1,
        });
        assert!(Summary::from_json(&bad).is_err());
        assert!(Summary::from_json(&json!({"median": 1.0})).is_err());
    }

    #[test]
    fn scale_preserves_shape() {
        let secs = Summary::from_samples(&[0.5, 0.55, 0.45, 0.5, 0.52], 300);
        let ns = secs.scale(1e9 / 1000.0); // 1000 ops per pass, ns/op
        assert!((ns.median - secs.median * 1e6).abs() < 1e-3);
        assert!(ns.ci_lo <= ns.median && ns.median <= ns.ci_hi);
        assert_eq!(ns.reps, secs.reps);
        assert_eq!(ns.cv, secs.cv);
        ns.check().expect("scaled summary valid");
    }

    #[test]
    fn rate_conversion_flips_interval() {
        let secs = Summary::from_samples(&[0.5, 0.55, 0.45, 0.5, 0.52], 300);
        let rate = secs.to_rate(1_000_000);
        assert!((rate.median - 2.0e6).abs() < 1e-6);
        assert!(rate.ci_lo <= rate.median && rate.median <= rate.ci_hi);
        rate.check().expect("rate summary valid");
        assert_eq!(rate.samples.len(), secs.samples.len());
    }

    #[test]
    fn ratio_interval_is_conservative() {
        let a = Summary::from_samples(&[2.0, 2.1, 1.9, 2.0, 2.05], 300);
        let b = Summary::from_samples(&[1.0, 1.05, 0.95, 1.0, 1.02], 300);
        let r = a.ratio_vs(&b);
        assert!((r.median - a.median / b.median).abs() < 1e-12);
        assert!(r.ci_lo <= r.median && r.median <= r.ci_hi);
        assert!(r.ci_lo <= a.ci_lo / b.ci_hi + 1e-12);
    }

    #[test]
    fn adaptive_measurement_stops_early_when_quiet() {
        let cfg = MeasureConfig {
            min_reps: 3,
            max_reps: 50,
            target_rci: 0.10,
            resamples: 300,
        };
        // A noiseless source satisfies the stopping rule at min_reps.
        let mut n = 0usize;
        let s = measure_adaptive(&cfg, || {
            n += 1;
            42.0
        });
        assert_eq!(s.reps, 3);
        assert_eq!(n, 3);
        assert_eq!(s.median, 42.0);
        assert_eq!((s.ci_lo, s.ci_hi), (42.0, 42.0));
    }

    #[test]
    fn adaptive_measurement_caps_reps_when_noisy() {
        let cfg = MeasureConfig {
            min_reps: 3,
            max_reps: 8,
            target_rci: 0.001, // unreachable for this source
            resamples: 200,
        };
        // Deterministic "noise": alternating high/low values keep the CI wide.
        let mut rng = SmallRng::seed_from_u64(7);
        let s = measure_adaptive(&cfg, || 1.0 + rng.unit_f64());
        assert_eq!(s.reps, 8, "cap reached");
        assert!(s.relative_half_width() > cfg.target_rci);
    }

    #[test]
    fn geomean_ratios_cancels_symmetric_changes() {
        assert!((geomean_ratios(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((geomean_ratios(&[1.1, 1.1, 1.1]) - 1.1).abs() < 1e-12);
    }
}
