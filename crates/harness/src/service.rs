//! Experiment service core: request model, job dispatch, worker pool and
//! load generator.
//!
//! This module is the network-free heart of `splash4-serve` (`DESIGN.md`
//! §13). The serve crate handles sockets and framing; everything about *what
//! a request means* lives here so the harness can test and benchmark the
//! service without a TCP stack in the loop:
//!
//! - [`Request`] / [`RequestKind`]: the three request families (report
//!   experiment, native kernel bench, many-core synthetic sim) with a
//!   canonical form that content-hashes into a [`ResultCache`] key,
//! - [`JobEvent`]: the streamed lifecycle `queued → running → progress →
//!   done | error`, JSON-round-trippable for the wire,
//! - [`dispatch`]: executes one request under a [`JobCtl`] (progress
//!   callback + deadline),
//! - [`WorkerPool`]: a configurable worker team fed by the lock-free
//!   [`BoundedMpmcQueue`], deduping identical configs through the shared
//!   cache and draining gracefully on shutdown,
//! - [`run_loadgen`]: the scale-out load generator behind the
//!   `serve/requests_per_sec` and `serve/events_per_sec_p1024` bench
//!   metrics.

use crate::cache::{fnv1a, ResultCache};
use crate::experiments::{run_experiment, ExperimentCtx};
use crate::perfbench::synthetic_program;
use crate::registry::BenchmarkId;
use splash4_parmacs::{json, Backoff, BoundedMpmcQueue, Json, SyncCounters, SyncEnv, SyncMode};
use splash4_sim::{engine, BarrierKind, MachineParams};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// What a client asked the service to run.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// One report experiment by id (e.g. `"F2-sim-epyc"`), run against the
    /// pool's shared [`ExperimentCtx`].
    Experiment {
        /// Experiment id from [`crate::experiments::ALL_EXPERIMENTS`].
        id: String,
    },
    /// One native kernel run: elapsed time plus the dynamic sync profile.
    Bench {
        /// Benchmark name (e.g. `"fft"`).
        benchmark: String,
        /// Back-end label (`"splash3"` / `"splash4"`).
        mode: String,
        /// Host threads.
        threads: usize,
    },
    /// A deterministic synthetic program simulated on the many-core preset
    /// ([`MachineParams::manycore`]); the scale-out request family.
    Sim {
        /// Simulated cores (the serve scaling study sweeps 256–1024).
        cores: usize,
        /// Operations per core in the synthetic program.
        ops_per_core: usize,
        /// Barrier kind: `"sense"`, `"condvar"` or `"tree"`.
        barrier: String,
        /// Program seed (content-hashes into the cache key).
        seed: u64,
        /// Optional machine spec resolved via [`MachineParams::resolve`]
        /// (preset name, profile file, or inline JSON). `None` keeps the
        /// many-core preset sized to `cores`. Part of the cache key: the
        /// same program on a different machine is a different result.
        machine: Option<String>,
    },
}

/// A service request: what to run plus an optional per-request deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// What to run.
    pub kind: RequestKind,
    /// Per-request timeout in milliseconds (`None` = the pool default).
    pub timeout_ms: Option<u64>,
}

impl Request {
    /// Convenience constructor with no per-request timeout.
    pub fn new(kind: RequestKind) -> Request {
        Request {
            kind,
            timeout_ms: None,
        }
    }

    /// The canonical content string of this request. Identical configs —
    /// regardless of field order on the wire or timeout — canonicalize
    /// identically, which is what makes the result cache content-addressed.
    pub fn canonical(&self) -> String {
        match &self.kind {
            RequestKind::Experiment { id } => format!("experiment/{id}"),
            RequestKind::Bench {
                benchmark,
                mode,
                threads,
            } => format!("bench/{benchmark}/{mode}/t{threads}"),
            RequestKind::Sim {
                cores,
                ops_per_core,
                barrier,
                seed,
                machine,
            } => {
                // Requests without an override keep their pre-override
                // canonical form, so cached results stay addressable.
                let suffix = match machine {
                    Some(m) => format!("/m{m}"),
                    None => String::new(),
                };
                format!("sim/c{cores}/n{ops_per_core}/{barrier}/s{seed}{suffix}")
            }
        }
    }

    /// Encode for the wire.
    pub fn to_json(&self) -> Json {
        let mut obj = match &self.kind {
            RequestKind::Experiment { id } => vec![
                ("type".to_string(), Json::Str("experiment".into())),
                ("id".to_string(), Json::Str(id.clone())),
            ],
            RequestKind::Bench {
                benchmark,
                mode,
                threads,
            } => vec![
                ("type".to_string(), Json::Str("bench".into())),
                ("benchmark".to_string(), Json::Str(benchmark.clone())),
                ("mode".to_string(), Json::Str(mode.clone())),
                ("threads".to_string(), Json::Num(*threads as f64)),
            ],
            RequestKind::Sim {
                cores,
                ops_per_core,
                barrier,
                seed,
                machine,
            } => {
                let mut fields = vec![
                    ("type".to_string(), Json::Str("sim".into())),
                    ("cores".to_string(), Json::Num(*cores as f64)),
                    ("ops_per_core".to_string(), Json::Num(*ops_per_core as f64)),
                    ("barrier".to_string(), Json::Str(barrier.clone())),
                    ("seed".to_string(), Json::Num(*seed as f64)),
                ];
                if let Some(m) = machine {
                    fields.push(("machine".to_string(), Json::Str(m.clone())));
                }
                fields
            }
        };
        if let Some(ms) = self.timeout_ms {
            obj.push(("timeout_ms".to_string(), Json::Num(ms as f64)));
        }
        Json::Object(obj)
    }

    /// Decode a wire request.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("request is missing string field '{k}'"))
        };
        let num_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("request is missing integer field '{k}'"))
        };
        let kind = match str_field("type")?.as_str() {
            "experiment" => RequestKind::Experiment {
                id: str_field("id")?,
            },
            "bench" => RequestKind::Bench {
                benchmark: str_field("benchmark")?,
                mode: str_field("mode")?,
                threads: num_field("threads")? as usize,
            },
            "sim" => RequestKind::Sim {
                cores: num_field("cores")? as usize,
                ops_per_core: num_field("ops_per_core")? as usize,
                barrier: str_field("barrier")?,
                seed: num_field("seed")?,
                machine: v.get("machine").and_then(Json::as_str).map(str::to_string),
            },
            other => return Err(format!("unknown request type '{other}'")),
        };
        Ok(Request {
            kind,
            timeout_ms: v.get("timeout_ms").and_then(Json::as_u64),
        })
    }
}

/// One step of a job's streamed lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// Accepted and placed on the worker queue.
    Queued {
        /// Job id.
        job: u64,
    },
    /// A worker picked the job up.
    Running {
        /// Job id.
        job: u64,
    },
    /// Execution progress in percent.
    Progress {
        /// Job id.
        job: u64,
        /// Rough completion percentage (monotonic per job).
        pct: u8,
    },
    /// Finished; `cached` is `true` when the result came from the
    /// content-hashed cache (including coalescing onto an in-flight twin).
    Done {
        /// Job id.
        job: u64,
        /// Served from cache?
        cached: bool,
        /// The result payload.
        result: Json,
    },
    /// Failed (dispatch error, timeout, or rejected at shutdown).
    Error {
        /// Job id.
        job: u64,
        /// Human-readable cause.
        message: String,
    },
}

impl JobEvent {
    /// The job this event belongs to.
    pub fn job(&self) -> u64 {
        match self {
            JobEvent::Queued { job }
            | JobEvent::Running { job }
            | JobEvent::Progress { job, .. }
            | JobEvent::Done { job, .. }
            | JobEvent::Error { job, .. } => *job,
        }
    }

    /// `true` for `Done` / `Error` — the stream ends after these.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobEvent::Done { .. } | JobEvent::Error { .. })
    }

    /// Encode for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            JobEvent::Queued { job } => json!({ "event": "queued", "job": *job }),
            JobEvent::Running { job } => json!({ "event": "running", "job": *job }),
            JobEvent::Progress { job, pct } => {
                json!({ "event": "progress", "job": *job, "pct": *pct as u64 })
            }
            JobEvent::Done {
                job,
                cached,
                result,
            } => {
                json!({ "event": "done", "job": *job, "cached": *cached, "result": result.clone() })
            }
            JobEvent::Error { job, message } => {
                json!({ "event": "error", "job": *job, "message": message.clone() })
            }
        }
    }

    /// Decode a wire event.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<JobEvent, String> {
        let job = v
            .get("job")
            .and_then(Json::as_u64)
            .ok_or("event is missing integer field 'job'")?;
        match v.get("event").and_then(Json::as_str) {
            Some("queued") => Ok(JobEvent::Queued { job }),
            Some("running") => Ok(JobEvent::Running { job }),
            Some("progress") => Ok(JobEvent::Progress {
                job,
                pct: v
                    .get("pct")
                    .and_then(Json::as_u64)
                    .ok_or("progress event is missing 'pct'")?
                    .min(100) as u8,
            }),
            Some("done") => Ok(JobEvent::Done {
                job,
                cached: v
                    .get("cached")
                    .and_then(Json::as_bool)
                    .ok_or("done event is missing 'cached'")?,
                result: v.get("result").cloned().unwrap_or(Json::Null),
            }),
            Some("error") => Ok(JobEvent::Error {
                job,
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            }),
            other => Err(format!("unknown event kind {other:?}")),
        }
    }
}

/// Execution control handed to [`dispatch`]: a progress sink plus the job's
/// deadline. Every [`JobCtl::tick`] checks the deadline, so a request that
/// overruns its timeout fails at the next stage boundary instead of running
/// to completion.
pub struct JobCtl {
    deadline: Option<Instant>,
    progress: Box<dyn Fn(u8) + Send + Sync>,
}

impl std::fmt::Debug for JobCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobCtl")
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl JobCtl {
    /// A control with the given deadline, forwarding progress to `progress`.
    pub fn new(deadline: Option<Instant>, progress: impl Fn(u8) + Send + Sync + 'static) -> JobCtl {
        JobCtl {
            deadline,
            progress: Box::new(progress),
        }
    }

    /// No deadline, progress discarded — for direct (non-pooled) dispatch.
    pub fn unlimited() -> JobCtl {
        JobCtl::new(None, |_| {})
    }

    /// Report progress, failing the job if its deadline has passed.
    ///
    /// # Errors
    /// Returns a timeout message once the deadline is exceeded.
    pub fn tick(&self, pct: u8) -> Result<(), String> {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err("request timed out (deadline exceeded)".to_string());
            }
        }
        (self.progress)(pct.min(100));
        Ok(())
    }
}

/// Execute one request, reporting progress through `ctl`.
///
/// Deterministic request kinds (experiment against a warm model cache, sim)
/// produce byte-identical JSON on re-execution — the property that makes
/// content-hashed caching sound.
///
/// # Errors
/// Returns a message for unknown ids/names/modes, invalid parameters, and
/// deadline overruns.
pub fn dispatch(req: &Request, ctx: &ExperimentCtx, ctl: &JobCtl) -> Result<Json, String> {
    ctl.tick(5)?;
    match &req.kind {
        RequestKind::Experiment { id } => {
            let report = run_experiment(id, ctx)?;
            ctl.tick(90)?;
            Ok(json!({
                "type": "experiment",
                "id": report.id.clone(),
                "title": report.title.clone(),
                "text": report.text.clone(),
                "data": report.json.clone(),
            }))
        }
        RequestKind::Bench {
            benchmark,
            mode,
            threads,
        } => {
            let b = BenchmarkId::from_name(benchmark).ok_or_else(|| {
                format!(
                    "unknown benchmark '{benchmark}'; known benchmarks: {}",
                    splash4_kernels::workload::known_names().join(", ")
                )
            })?;
            let m = SyncMode::from_label(mode).ok_or_else(|| format!("unknown mode '{mode}'"))?;
            if *threads == 0 {
                return Err("bench request needs threads >= 1".to_string());
            }
            let env = SyncEnv::new(m, *threads);
            let result = b.run(ctx.class, &env);
            ctl.tick(90)?;
            Ok(json!({
                "type": "bench",
                "benchmark": b.name(),
                "mode": m.label(),
                "threads": *threads as u64,
                "class": ctx.class.label(),
                "elapsed_ns": result.elapsed_ns(),
                "profile": result.profile,
            }))
        }
        RequestKind::Sim {
            cores,
            ops_per_core,
            barrier,
            seed,
            machine,
        } => {
            let kind = barrier_kind(barrier)?;
            if *cores == 0 || *ops_per_core == 0 {
                return Err("sim request needs cores >= 1 and ops_per_core >= 1".to_string());
            }
            let machine = match machine {
                Some(spec) => MachineParams::resolve(spec)?,
                None => MachineParams::manycore(*cores),
            };
            let program = synthetic_program(*cores, *ops_per_core, kind, *seed);
            ctl.tick(40)?;
            let events = program.total_ops() as u64;
            let result = engine::run(&program, &machine);
            ctl.tick(90)?;
            let (compute, service, wait, sync_local, barrier_f) = result.fractions();
            Ok(json!({
                "type": "sim",
                "machine": machine.name,
                "cores": *cores as u64,
                "ops_per_core": *ops_per_core as u64,
                "barrier": barrier.clone(),
                "seed": *seed,
                "events": events,
                "total_ns": result.total_ns,
                "fractions": json!({
                    "compute": compute, "service": service, "wait": wait,
                    "sync_local": sync_local, "barrier": barrier_f,
                }),
            }))
        }
    }
}

fn barrier_kind(s: &str) -> Result<BarrierKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "sense" => Ok(BarrierKind::Sense),
        "condvar" => Ok(BarrierKind::Condvar),
        "tree" => Ok(BarrierKind::Tree),
        other => Err(format!(
            "unknown barrier kind '{other}' (expected sense, condvar or tree)"
        )),
    }
}

/// Tuning knobs for a [`WorkerPool`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads.
    pub workers: usize,
    /// Result-cache retention bound (ready entries).
    pub cache_capacity: usize,
    /// Bounded job-queue capacity (submissions spin when full).
    pub queue_capacity: usize,
    /// Default per-request timeout when the request carries none.
    pub default_timeout_ms: Option<u64>,
    /// Experiment context shared by every job (and its model cache —
    /// sharing this ctx with a direct run makes results bit-identical).
    pub ctx: ExperimentCtx,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            cache_capacity: 64,
            queue_capacity: 256,
            default_timeout_ms: None,
            ctx: ExperimentCtx::default(),
        }
    }
}

struct Job {
    id: u64,
    request: Request,
    deadline: Option<Instant>,
    events: mpsc::Sender<JobEvent>,
}

struct PoolShared {
    accepting: AtomicBool,
    stop: AtomicBool,
    next_job: AtomicU64,
    ctx: ExperimentCtx,
    cache: ResultCache<Json>,
    stats: Arc<SyncCounters>,
    default_timeout_ms: Option<u64>,
}

/// The service's execution engine: `workers` threads draining a lock-free
/// [`BoundedMpmcQueue`] of jobs, deduping through a shared [`ResultCache`].
///
/// Shutdown is graceful: new submissions are rejected, queued and in-flight
/// jobs run to completion, then the workers exit. Dropping the pool performs
/// the same drain.
pub struct WorkerPool {
    queue: Arc<BoundedMpmcQueue<Job>>,
    shared: Arc<PoolShared>,
    workers: std::sync::Mutex<Vec<thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("cache", &self.shared.cache)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Start `cfg.workers` worker threads.
    pub fn start(cfg: ServiceConfig) -> WorkerPool {
        let stats = Arc::new(SyncCounters::new());
        let queue = Arc::new(BoundedMpmcQueue::new(
            cfg.queue_capacity.max(2),
            Arc::clone(&stats),
        ));
        let shared = Arc::new(PoolShared {
            accepting: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            ctx: cfg.ctx,
            cache: ResultCache::new(cfg.cache_capacity, Arc::clone(&stats)),
            stats,
            default_timeout_ms: cfg.default_timeout_ms,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &shared))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            queue,
            shared,
            workers: std::sync::Mutex::new(workers),
        }
    }

    /// Submit a request. Returns the job id and the event stream (already
    /// carrying the `Queued` event).
    ///
    /// # Errors
    /// Rejected once shutdown has begun.
    pub fn submit(&self, request: Request) -> Result<(u64, mpsc::Receiver<JobEvent>), String> {
        if !self.shared.accepting.load(Ordering::Acquire) {
            return Err("service is shutting down; request rejected".to_string());
        }
        let id = self.shared.next_job.fetch_add(1, Ordering::Relaxed) + 1;
        let (tx, rx) = mpsc::channel();
        let deadline = request
            .timeout_ms
            .or(self.shared.default_timeout_ms)
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let _ = tx.send(JobEvent::Queued { job: id });
        // Bounded admission: when the ring is full, spin with the shared
        // truncated-exponential `Backoff` (the same discipline the worker
        // drain loop uses) instead of a bare busy-wait — submissions under
        // a saturated pool yield the core instead of burning it.
        let mut job = Job {
            id,
            request,
            deadline,
            events: tx,
        };
        let mut backoff = Backoff::new();
        loop {
            match self.queue.try_push(job) {
                Ok(()) => return Ok((id, rx)),
                Err(back) => {
                    job = back;
                    backoff.snooze();
                }
            }
        }
    }

    /// The cache key `request` resolves to in this pool (exposed so tests
    /// and the serve layer can reason about dedup).
    pub fn cache_key(&self, request: &Request) -> u64 {
        Self::key_for(&self.shared.ctx, request)
    }

    fn key_for(ctx: &ExperimentCtx, request: &Request) -> u64 {
        // The input class shapes every result, so it is part of the content
        // hash even though it is pool-global today.
        let canonical = format!("{}|class={}", request.canonical(), ctx.class.label());
        fnv1a(canonical.as_bytes())
    }

    /// The experiment ctx jobs run against (share it with a direct
    /// [`dispatch`] call to get bit-identical results).
    pub fn ctx(&self) -> &ExperimentCtx {
        &self.shared.ctx
    }

    /// Jobs accepted so far.
    pub fn submitted(&self) -> u64 {
        self.shared.next_job.load(Ordering::Relaxed)
    }

    /// Folded queue/cache instrumentation (queue ops, cache hits/misses…).
    pub fn profile(&self) -> splash4_parmacs::SyncProfile {
        self.shared.stats.snapshot()
    }

    /// Graceful shutdown: reject new work, drain queued and in-flight jobs,
    /// join the workers. Idempotent, and callable through a shared
    /// reference so a server can trigger it from any connection thread.
    pub fn shutdown(&self) {
        self.shared.accepting.store(false, Ordering::Release);
        self.shared.stop.store(true, Ordering::Release);
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker pool poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(queue: &BoundedMpmcQueue<Job>, shared: &PoolShared) {
    let mut backoff = Backoff::new();
    loop {
        match queue.try_pop() {
            Some(job) => {
                backoff.reset();
                run_job(shared, job);
            }
            None => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                if backoff.is_completed() {
                    // Idle server: stop burning a core, poll gently.
                    thread::sleep(Duration::from_micros(200));
                } else {
                    backoff.snooze();
                }
            }
        }
    }
}

fn run_job(shared: &PoolShared, job: Job) {
    let Job {
        id,
        request,
        deadline,
        events,
    } = job;
    if deadline.is_some_and(|d| Instant::now() >= d) {
        let _ = events.send(JobEvent::Error {
            job: id,
            message: "request timed out while queued".to_string(),
        });
        return;
    }
    let _ = events.send(JobEvent::Running { job: id });
    let key = WorkerPool::key_for(&shared.ctx, &request);
    let progress_tx = events.clone();
    let ctl = JobCtl::new(deadline, move |pct| {
        let _ = progress_tx.send(JobEvent::Progress { job: id, pct });
    });
    match shared
        .cache
        .get_or_try_compute(key, || dispatch(&request, &shared.ctx, &ctl))
    {
        Ok((result, cached)) => {
            let _ = events.send(JobEvent::Done {
                job: id,
                cached,
                result,
            });
        }
        Err(message) => {
            let _ = events.send(JobEvent::Error { job: id, message });
        }
    }
}

/// Drain `rx` until the job's terminal event, returning everything received.
pub fn drain_events(rx: &mpsc::Receiver<JobEvent>) -> Vec<JobEvent> {
    let mut events = Vec::new();
    while let Ok(ev) = rx.recv() {
        let terminal = ev.is_terminal();
        events.push(ev);
        if terminal {
            break;
        }
    }
    events
}

/// What [`run_loadgen`] measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Requests submitted (and completed).
    pub requests: usize,
    /// Distinct request configs among them.
    pub distinct: usize,
    /// Wall seconds from first submission to last terminal event.
    pub wall_secs: f64,
    /// Completed requests per second.
    pub requests_per_sec: f64,
    /// Simulated events carried by the completed results.
    pub sim_events: u64,
    /// Simulated events served per second.
    pub events_per_sec: f64,
    /// `Done` events served from cache.
    pub cache_hits: usize,
    /// `Done` events that actually computed.
    pub cache_misses: usize,
}

/// Drive `requests` many-core sim requests through `pool` from `clients`
/// concurrent submitters and measure service throughput.
///
/// Every config is requested twice (seeds cycle through `requests / 2`
/// distinct values), so the run exercises the dedup path deterministically:
/// exactly `distinct` computations happen, the rest are cache hits.
///
/// # Errors
/// Fails if any job errors or a stream ends without a terminal event.
pub fn run_loadgen(
    pool: &WorkerPool,
    requests: usize,
    clients: usize,
    sim_cores: usize,
    ops_per_core: usize,
) -> Result<LoadgenReport, String> {
    let requests = requests.max(1);
    let clients = clients.clamp(1, requests);
    let distinct = requests.div_ceil(2);
    let kinds = ["sense", "tree", "condvar"];
    let reqs: Vec<Request> = (0..requests)
        .map(|i| {
            let variant = i % distinct;
            Request::new(RequestKind::Sim {
                cores: sim_cores,
                ops_per_core,
                barrier: kinds[variant % kinds.len()].to_string(),
                seed: 0x10ad + variant as u64,
                machine: None,
            })
        })
        .collect();

    let t0 = Instant::now();
    let outcomes: Vec<Result<Vec<JobEvent>, String>> = thread::scope(|scope| {
        let pool = &pool;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let my_reqs: Vec<Request> = reqs.iter().skip(c).step_by(clients).cloned().collect();
                scope.spawn(move || {
                    let mut streams = Vec::new();
                    for r in my_reqs {
                        let (_, rx) = pool.submit(r)?;
                        streams.push(drain_events(&rx));
                    }
                    Ok(streams)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join().expect("loadgen client panicked") {
                Ok(streams) => streams.into_iter().map(Ok).collect::<Vec<_>>(),
                Err(e) => vec![Err(e)],
            })
            .collect()
    });
    let wall_secs = t0.elapsed().as_secs_f64().max(1e-9);

    let mut sim_events = 0u64;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    for outcome in outcomes {
        let events = outcome?;
        match events.last() {
            Some(JobEvent::Done { cached, result, .. }) => {
                if *cached {
                    cache_hits += 1;
                } else {
                    cache_misses += 1;
                }
                sim_events += result.get("events").and_then(Json::as_u64).unwrap_or(0);
            }
            Some(JobEvent::Error { message, .. }) => {
                return Err(format!("loadgen job failed: {message}"));
            }
            _ => return Err("loadgen stream ended without a terminal event".to_string()),
        }
    }
    Ok(LoadgenReport {
        requests,
        distinct,
        wall_secs,
        requests_per_sec: requests as f64 / wall_secs,
        sim_events,
        events_per_sec: sim_events as f64 / wall_secs,
        cache_hits,
        cache_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splash4_kernels::InputClass;

    fn tiny_ctx() -> ExperimentCtx {
        ExperimentCtx {
            class: InputClass::Test,
            benchmarks: vec![BenchmarkId::Fft],
            native_threads: vec![1],
            sim_threads: vec![1, 8],
            snapshot_cores: 8,
            ..ExperimentCtx::default()
        }
    }

    fn tiny_pool(workers: usize) -> WorkerPool {
        WorkerPool::start(ServiceConfig {
            workers,
            cache_capacity: 16,
            queue_capacity: 64,
            default_timeout_ms: None,
            ctx: tiny_ctx(),
        })
    }

    fn sim_request(seed: u64) -> Request {
        Request::new(RequestKind::Sim {
            cores: 256,
            ops_per_core: 40,
            barrier: "sense".to_string(),
            seed,
            machine: None,
        })
    }

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = [
            Request::new(RequestKind::Experiment {
                id: "T1-inputs".into(),
            }),
            Request {
                kind: RequestKind::Bench {
                    benchmark: "fft".into(),
                    mode: "splash4".into(),
                    threads: 4,
                },
                timeout_ms: Some(1500),
            },
            Request::new(RequestKind::Sim {
                cores: 1024,
                ops_per_core: 100,
                barrier: "tree".into(),
                seed: 7,
                machine: None,
            }),
            Request::new(RequestKind::Sim {
                cores: 64,
                ops_per_core: 10,
                barrier: "sense".into(),
                seed: 9,
                machine: Some("icelake".into()),
            }),
        ];
        for r in reqs {
            let wire = r.to_json().to_string();
            let back = Request::from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, r);
        }
        assert!(Request::from_json(&json!({ "type": "nope" })).is_err());
    }

    #[test]
    fn job_events_round_trip_through_json() {
        let events = [
            JobEvent::Queued { job: 3 },
            JobEvent::Running { job: 3 },
            JobEvent::Progress { job: 3, pct: 40 },
            JobEvent::Done {
                job: 3,
                cached: true,
                result: json!({ "events": 12u64 }),
            },
            JobEvent::Error {
                job: 3,
                message: "boom".into(),
            },
        ];
        for ev in events {
            let wire = ev.to_json().to_string();
            let back = JobEvent::from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, ev);
            assert_eq!(back.job(), 3);
        }
    }

    #[test]
    fn canonical_form_ignores_timeout_but_not_content() {
        let a = sim_request(1);
        let mut b = sim_request(1);
        b.timeout_ms = Some(10);
        assert_eq!(a.canonical(), b.canonical());
        assert_ne!(a.canonical(), sim_request(2).canonical());
    }

    #[test]
    fn sim_machine_override_is_part_of_the_cache_key_and_resolves() {
        let base = sim_request(1);
        let mut on_icelake = sim_request(1);
        let RequestKind::Sim { machine, .. } = &mut on_icelake.kind else {
            unreachable!();
        };
        *machine = Some("icelake".into());
        // Same program on a different machine must not share a cache slot,
        // and a machine-less request keeps its pre-override canonical form.
        assert_ne!(base.canonical(), on_icelake.canonical());
        assert!(base.canonical().ends_with("/s1"));

        let ctx = tiny_ctx();
        let result = dispatch(&on_icelake, &ctx, &JobCtl::unlimited()).unwrap();
        assert_eq!(
            result.get("machine").and_then(Json::as_str),
            Some("icelake-gem5-like")
        );

        let mut bogus = sim_request(1);
        let RequestKind::Sim { machine, .. } = &mut bogus.kind else {
            unreachable!();
        };
        *machine = Some("not-a-machine".into());
        assert!(dispatch(&bogus, &ctx, &JobCtl::unlimited()).is_err());
    }

    #[test]
    fn dispatch_is_deterministic_for_sim_and_experiment() {
        let ctx = tiny_ctx();
        for req in [
            sim_request(9),
            Request::new(RequestKind::Experiment {
                id: "T1-inputs".into(),
            }),
        ] {
            let a = dispatch(&req, &ctx, &JobCtl::unlimited()).unwrap();
            let b = dispatch(&req, &ctx, &JobCtl::unlimited()).unwrap();
            assert_eq!(
                a.to_string(),
                b.to_string(),
                "{} must re-execute bit-identically",
                req.canonical()
            );
        }
    }

    #[test]
    fn pool_streams_lifecycle_and_serves_duplicates_from_cache() {
        let pool = tiny_pool(2);
        let (id, rx) = pool.submit(sim_request(5)).unwrap();
        let first = drain_events(&rx);
        assert!(matches!(first[0], JobEvent::Queued { job } if job == id));
        assert!(first.iter().any(|e| matches!(e, JobEvent::Running { .. })));
        assert!(first.iter().any(|e| matches!(e, JobEvent::Progress { .. })));
        let Some(JobEvent::Done {
            cached: false,
            result,
            ..
        }) = first.last()
        else {
            panic!("first run must compute: {first:?}");
        };

        let (_, rx) = pool.submit(sim_request(5)).unwrap();
        let second = drain_events(&rx);
        let Some(JobEvent::Done {
            cached: true,
            result: dup,
            ..
        }) = second.last()
        else {
            panic!("duplicate must be served from cache: {second:?}");
        };
        assert_eq!(dup.to_string(), result.to_string());

        let profile = pool.profile();
        assert_eq!(profile.cache_misses, 1);
        assert_eq!(profile.cache_hits, 1);
        assert!(profile.queue_ops > 0, "jobs flow through the MPMC queue");
        pool.shutdown();
    }

    #[test]
    fn submissions_back_off_through_a_full_queue_without_loss() {
        // Capacity 2 (the queue rounds up to a power of two) with a single
        // worker: a burst of distinct requests must saturate the ring and
        // force submitters through the backoff path, yet every job completes.
        let pool = WorkerPool::start(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            queue_capacity: 2,
            default_timeout_ms: None,
            ctx: tiny_ctx(),
        });
        let receivers: Vec<_> = (0..12)
            .map(|seed| pool.submit(sim_request(seed)).unwrap().1)
            .collect();
        for rx in receivers {
            let events = drain_events(&rx);
            assert!(
                matches!(events.last(), Some(JobEvent::Done { .. })),
                "job must complete despite a full queue: {events:?}"
            );
        }
        assert_eq!(pool.submitted(), 12);
        pool.shutdown();
    }

    #[test]
    fn mixed_request_kinds_all_complete() {
        let pool = tiny_pool(3);
        let reqs = vec![
            Request::new(RequestKind::Experiment {
                id: "T1-inputs".into(),
            }),
            Request::new(RequestKind::Bench {
                benchmark: "fft".into(),
                mode: "splash4".into(),
                threads: 2,
            }),
            sim_request(1),
            sim_request(2),
        ];
        let streams: Vec<_> = reqs
            .into_iter()
            .map(|r| pool.submit(r).unwrap().1)
            .collect();
        for rx in &streams {
            let events = drain_events(rx);
            assert!(
                matches!(events.last(), Some(JobEvent::Done { .. })),
                "job must finish cleanly: {events:?}"
            );
        }
        pool.shutdown();
    }

    #[test]
    fn unknown_requests_fail_with_clean_errors() {
        let pool = tiny_pool(1);
        let (_, rx) = pool
            .submit(Request::new(RequestKind::Experiment {
                id: "F9-nope".into(),
            }))
            .unwrap();
        let events = drain_events(&rx);
        let Some(JobEvent::Error { message, .. }) = events.last() else {
            panic!("unknown experiment must error: {events:?}");
        };
        assert!(message.contains("unknown experiment"));
        // Errors are not cached: counters show two misses after a retry.
        let (_, rx) = pool
            .submit(Request::new(RequestKind::Experiment {
                id: "F9-nope".into(),
            }))
            .unwrap();
        drain_events(&rx);
        assert_eq!(pool.profile().cache_misses, 2);
        pool.shutdown();
    }

    #[test]
    fn zero_timeout_fails_deterministically() {
        let pool = tiny_pool(1);
        let mut req = sim_request(77);
        req.timeout_ms = Some(0);
        let (_, rx) = pool.submit(req).unwrap();
        let events = drain_events(&rx);
        let Some(JobEvent::Error { message, .. }) = events.last() else {
            panic!("zero timeout must fail: {events:?}");
        };
        assert!(message.contains("timed out"), "got: {message}");
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work_then_rejects() {
        let pool = tiny_pool(2);
        let streams: Vec<_> = (0..6)
            .map(|i| pool.submit(sim_request(i)).unwrap().1)
            .collect();
        pool.shutdown();
        for rx in &streams {
            let events = drain_events(rx);
            assert!(
                matches!(events.last(), Some(JobEvent::Done { .. })),
                "queued work must drain on shutdown: {events:?}"
            );
        }
        assert!(pool.submit(sim_request(99)).is_err());
    }

    #[test]
    fn concurrent_duplicates_compute_exactly_once() {
        let pool = Arc::new(tiny_pool(4));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    let (_, rx) = pool.submit(sim_request(1234)).unwrap();
                    drain_events(&rx)
                })
            })
            .collect();
        let mut computed = 0;
        for h in handles {
            let events = h.join().unwrap();
            match events.last() {
                Some(JobEvent::Done { cached: false, .. }) => computed += 1,
                Some(JobEvent::Done { cached: true, .. }) => {}
                other => panic!("job must complete: {other:?}"),
            }
        }
        assert_eq!(computed, 1, "identical configs must compute exactly once");
        assert_eq!(pool.profile().cache_misses, 1);
        assert_eq!(pool.profile().cache_hits, 7);
    }

    #[test]
    fn loadgen_measures_throughput_and_dedup() {
        let pool = tiny_pool(4);
        let report = run_loadgen(&pool, 8, 4, 128, 30).unwrap();
        assert_eq!(report.requests, 8);
        assert_eq!(report.distinct, 4);
        assert_eq!(report.cache_misses, report.distinct);
        assert_eq!(report.cache_hits, report.requests - report.distinct);
        assert!(report.requests_per_sec > 0.0);
        assert!(report.sim_events > 0);
        assert!(report.events_per_sec > 0.0);
    }
}
