//! Perf-regression harness: microbenchmarks for the suite's hot paths.
//!
//! `splash4-report --bench` runs this and writes `BENCH_results.json`. Every
//! workload is fixed (deterministic construction, no RNG at run time beyond a
//! seeded LCG), every metric is a median over repetitions after a warmup
//! pass, so two runs on the same host are comparable and CI can archive the
//! numbers per commit without flaky threshold gating.
//!
//! Covered surfaces, per `DESIGN.md` §10:
//! - reducer ops/sec for both back-ends (lock-based vs CAS-loop),
//! - `GETSUB` counter grabs/sec for both back-ends,
//! - barrier crossings/sec for both back-ends (condvar vs sense-reversing),
//! - simulator events/sec for the indexed [`Engine`] against the preserved
//!   binary-heap reference ([`engine::run_reference`]) on identical programs,
//! - end-to-end wall time of one simulation-driven report experiment.

use crate::experiments::ExperimentCtx;
use crate::tables::Table;
use splash4_kernels::InputClass;
use splash4_parmacs::{json, PhaseSpec, SyncEnv, SyncMode, Team, WorkModel};
use splash4_sim::{engine, model, BarrierKind, MachineParams, Op, Program};
use std::time::Instant;

/// Tuning knobs for one bench run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Measured repetitions per metric (one extra warmup pass always runs).
    pub repetitions: usize,
    /// Threads used for the native synchronization microbenchmarks.
    pub threads: usize,
    /// Per-thread operations in the reducer / counter microbenchmarks.
    pub sync_ops: usize,
    /// Barrier crossings per thread.
    pub barrier_crossings: usize,
    /// Cores in the synthetic simulator program.
    pub sim_cores: usize,
    /// Operations per core in the synthetic simulator program.
    pub sim_ops_per_core: usize,
    /// `true` for the CI-sized run (`--quick`).
    pub quick: bool,
}

impl BenchConfig {
    /// Full-size configuration (local perf tracking).
    pub fn full() -> BenchConfig {
        BenchConfig {
            repetitions: 5,
            threads: 4,
            sync_ops: 100_000,
            barrier_crossings: 10_000,
            sim_cores: 32,
            sim_ops_per_core: 4_000,
            quick: false,
        }
    }

    /// CI-sized configuration: same shape, ~10× less work.
    pub fn quick() -> BenchConfig {
        BenchConfig {
            repetitions: 3,
            threads: 4,
            sync_ops: 10_000,
            barrier_crossings: 1_000,
            sim_cores: 16,
            sim_ops_per_core: 800,
            quick: true,
        }
    }
}

/// Median of `reps` timed runs of `f` (plus one untimed warmup), in seconds.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup: faults pages, warms caches, resolves lazy init
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
    samples[samples.len() / 2]
}

/// ops/sec for `total_ops` operations taking `secs` seconds.
fn rate(total_ops: u64, secs: f64) -> f64 {
    total_ops as f64 / secs.max(1e-12)
}

/// Reducer `add` throughput under full contention, one rate per back-end.
fn bench_reducers(cfg: &BenchConfig) -> [(SyncMode, f64); 2] {
    SyncMode::ALL.map(|mode| {
        let env = SyncEnv::new(mode, cfg.threads);
        let r = env.reducer_f64();
        let secs = median_secs(cfg.repetitions, || {
            Team::new(cfg.threads).run(|_| {
                for i in 0..cfg.sync_ops {
                    r.add(i as f64);
                }
            });
        });
        (mode, rate((cfg.threads * cfg.sync_ops) as u64, secs))
    })
}

/// `GETSUB` grab throughput: the team drains a shared index range.
fn bench_counters(cfg: &BenchConfig) -> [(SyncMode, f64); 2] {
    SyncMode::ALL.map(|mode| {
        let env = SyncEnv::new(mode, cfg.threads);
        let total = cfg.threads * cfg.sync_ops;
        let c = env.counter("bench", 0..total);
        let secs = median_secs(cfg.repetitions, || {
            c.reset();
            Team::new(cfg.threads).run(|_| while c.next().is_some() {});
        });
        (mode, rate(total as u64, secs))
    })
}

/// Barrier crossing throughput (whole-team crossings per second).
fn bench_barriers(cfg: &BenchConfig) -> [(SyncMode, f64); 2] {
    SyncMode::ALL.map(|mode| {
        let env = SyncEnv::new(mode, cfg.threads);
        let b = env.barrier();
        let secs = median_secs(cfg.repetitions, || {
            Team::new(cfg.threads).run(|ctx| {
                for _ in 0..cfg.barrier_crossings {
                    b.wait(ctx.tid);
                }
            });
        });
        (mode, rate(cfg.barrier_crossings as u64, secs))
    })
}

/// Deterministic synthetic simulator program: staggered compute, a mix of
/// shared and private server accesses with occasional contention penalties,
/// and periodic barriers — the op mix the experiment sweeps produce, built
/// from a seeded LCG so every bench run replays the same program.
fn synthetic_program(cores: usize, ops_per_core: usize, kind: BarrierKind, seed: u64) -> Program {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let barrier_every = 97; // prime, so barriers don't phase-lock with the mix
    let mut program = Program {
        name: "perfbench-synthetic".into(),
        cores: vec![Vec::with_capacity(ops_per_core); cores],
        barriers: Vec::new(),
    };
    let mut ops_emitted = vec![0usize; cores];
    let mut slot = 0usize;
    while ops_emitted.iter().any(|&n| n < ops_per_core) {
        slot += 1;
        let place_barrier = slot.is_multiple_of(barrier_every);
        if place_barrier {
            let id = program.barriers.len() as u32;
            program.barriers.push(kind);
            for (c, stream) in program.cores.iter_mut().enumerate() {
                stream.push(Op::Barrier { id });
                ops_emitted[c] += 1;
            }
            continue;
        }
        for (c, stream) in program.cores.iter_mut().enumerate() {
            if ops_emitted[c] >= ops_per_core {
                continue;
            }
            let r = next();
            let op = if r % 5 == 0 {
                Op::Access {
                    server: (r % 3) as u32, // 3 shared servers → real queueing
                    n: 1 + r % 4,
                    service_ns: 40 + r % 60,
                    local_ns: 15,
                    contended_ns: if r % 7 == 0 { 400 } else { 0 },
                }
            } else {
                Op::Compute {
                    ns: 50 + (r % 900) + c as u64 * 3,
                }
            };
            stream.push(op);
            ops_emitted[c] += 1;
        }
    }
    program
}

/// Simulator throughput: the indexed engine vs the preserved heap reference
/// on byte-identical programs. Returns `(engine_eps, reference_eps)`; the
/// two runs are also checked for result equality, so the bench doubles as an
/// equivalence test on programs far larger than the unit tests use.
///
/// The program set mirrors what F2/F3 regeneration feeds the engine: a
/// fixed, kernel-shaped `WorkModel` lowered through `model::expand` under
/// both sync policies across the core sweep, plus one LCG-built stress
/// program per barrier kind so server queueing is exercised too.
fn bench_sim_events(cfg: &BenchConfig) -> (f64, f64) {
    let machine = MachineParams::epyc_like();
    let work = WorkModel::new("perfbench")
        .phase(
            PhaseSpec::compute("sweep", cfg.sim_ops_per_core as u64, 90)
                .reduces(0.02)
                .barriers(2)
                .repeats(12),
        )
        .phase(
            PhaseSpec::compute("update", (cfg.sim_ops_per_core / 2) as u64, 45)
                .barriers(1)
                .repeats(24),
        );
    let mut programs: Vec<Program> = Vec::new();
    for cores in [cfg.sim_cores / 2, cfg.sim_cores, cfg.sim_cores * 2] {
        for mode in SyncMode::ALL {
            programs.push(model::expand(
                &work,
                splash4_parmacs::SyncPolicy::uniform(mode),
                cores.max(1),
                &machine,
            ));
        }
    }
    let kinds = [BarrierKind::Sense, BarrierKind::Condvar, BarrierKind::Tree];
    for (i, &k) in kinds.iter().enumerate() {
        programs.push(synthetic_program(
            cfg.sim_cores,
            cfg.sim_ops_per_core,
            k,
            0x5eed + i as u64,
        ));
    }
    let total_events: u64 = programs.iter().map(|p| p.total_ops() as u64).sum();

    // Doubles as warmup for the timed loops below.
    let mut eng = engine::Engine::new();
    for p in &programs {
        let fast = eng.run(p, &machine);
        let reference = engine::run_reference(p, &machine);
        assert_eq!(
            fast, reference,
            "indexed engine must match the heap reference on {}",
            p.name
        );
    }

    // Interleave the two engines within each repetition: CPU frequency and
    // thermal drift then shift both samples of a pair together instead of
    // biasing the ratio (back-to-back blocks were observed to swing the
    // measured speedup by ±40% on a busy host).
    let reps = cfg.repetitions.max(1);
    let mut fast_samples = Vec::with_capacity(reps);
    let mut ref_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for p in &programs {
            let _ = eng.run(p, &machine);
        }
        fast_samples.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for p in &programs {
            let _ = engine::run_reference(p, &machine);
        }
        ref_samples.push(t0.elapsed().as_secs_f64());
    }
    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
        v[v.len() / 2]
    };
    (
        rate(total_events, median(fast_samples)),
        rate(total_events, median(ref_samples)),
    )
}

/// Wall time of one full simulation-driven report experiment (F2), in
/// seconds. Uses a fresh ctx per repetition so the model cache and program
/// memoization are exercised exactly as a cold `splash4-report` run would.
fn bench_report_wall(cfg: &BenchConfig) -> f64 {
    let sim_threads = if cfg.quick {
        vec![1, 8, 64]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    median_secs(cfg.repetitions.min(3), || {
        let ctx = ExperimentCtx {
            class: InputClass::Test,
            sim_threads: sim_threads.clone(),
            ..ExperimentCtx::default()
        };
        crate::experiments::run_experiment("F2-sim-epyc", &ctx).expect("F2 runs");
    })
}

/// Run every microbenchmark and render the results.
///
/// The returned `(text, json)` pair is what `splash4-report --bench` prints
/// and writes: the JSON document is the `BENCH_results.json` schema CI
/// checks (`schema`, `config`, `metrics.*`).
pub fn run_bench(cfg: &BenchConfig) -> (String, splash4_parmacs::json::Json) {
    let reducers = bench_reducers(cfg);
    let counters = bench_counters(cfg);
    let barriers = bench_barriers(cfg);
    let (engine_eps, reference_eps) = bench_sim_events(cfg);
    let engine_speedup = engine_eps / reference_eps.max(1e-12);
    let report_secs = bench_report_wall(cfg);

    let mut t = Table::new(vec!["metric", "backend", "rate"]);
    let fmt_rate = |r: f64| format!("{:.3} Mops/s", r / 1e6);
    for (mode, r) in &reducers {
        t.row(vec![
            "reducer add".into(),
            mode.label().into(),
            fmt_rate(*r),
        ]);
    }
    for (mode, r) in &counters {
        t.row(vec![
            "counter grab".into(),
            mode.label().into(),
            fmt_rate(*r),
        ]);
    }
    for (mode, r) in &barriers {
        t.row(vec![
            "barrier crossing".into(),
            mode.label().into(),
            format!("{:.1} k/s", r / 1e3),
        ]);
    }
    t.row(vec![
        "sim events".into(),
        "indexed engine".into(),
        fmt_rate(engine_eps),
    ]);
    t.row(vec![
        "sim events".into(),
        "heap reference".into(),
        fmt_rate(reference_eps),
    ]);
    t.row(vec![
        "sim engine speedup".into(),
        "indexed/heap".into(),
        format!("{engine_speedup:.2}x"),
    ]);
    t.row(vec![
        "F2 report wall".into(),
        "end-to-end".into(),
        format!("{:.3} s", report_secs),
    ]);

    let by_mode = |pairs: &[(SyncMode, f64); 2]| {
        splash4_parmacs::json::Json::Object(
            pairs
                .iter()
                .map(|(m, r)| (m.label().to_string(), json!(*r)))
                .collect(),
        )
    };
    let doc = json!({
        "schema": "splash4-bench-v1",
        "config": json!({
            "quick": cfg.quick,
            "repetitions": cfg.repetitions as u64,
            "threads": cfg.threads as u64,
            "sync_ops": cfg.sync_ops as u64,
            "barrier_crossings": cfg.barrier_crossings as u64,
            "sim_cores": cfg.sim_cores as u64,
            "sim_ops_per_core": cfg.sim_ops_per_core as u64,
        }),
        "metrics": json!({
            "reducer_ops_per_sec": by_mode(&reducers),
            "counter_grabs_per_sec": by_mode(&counters),
            "barrier_crossings_per_sec": by_mode(&barriers),
            "sim_events_per_sec": json!({
                "engine": engine_eps,
                "reference": reference_eps,
                "speedup": engine_speedup,
            }),
            "report_wall_secs": report_secs,
        }),
    });
    (t.render(), doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            repetitions: 1,
            threads: 2,
            sync_ops: 500,
            barrier_crossings: 50,
            sim_cores: 4,
            sim_ops_per_core: 120,
            quick: true,
        }
    }

    #[test]
    fn synthetic_program_is_deterministic_and_valid() {
        let a = synthetic_program(8, 200, BarrierKind::Sense, 42);
        let b = synthetic_program(8, 200, BarrierKind::Sense, 42);
        assert_eq!(a, b, "same seed must build the same program");
        a.validate().expect("program validates");
        let c = synthetic_program(8, 200, BarrierKind::Sense, 43);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn bench_emits_expected_schema() {
        let (text, doc) = run_bench(&tiny());
        assert!(text.contains("sim engine speedup"));
        assert_eq!(doc["schema"].as_str(), Some("splash4-bench-v1"));
        let metrics = &doc["metrics"];
        for key in [
            "reducer_ops_per_sec",
            "counter_grabs_per_sec",
            "barrier_crossings_per_sec",
            "sim_events_per_sec",
            "report_wall_secs",
        ] {
            assert!(!metrics[key].is_null(), "missing metric {key}");
        }
        for backend_metric in [
            "reducer_ops_per_sec",
            "counter_grabs_per_sec",
            "barrier_crossings_per_sec",
        ] {
            for mode in SyncMode::ALL {
                let v = metrics[backend_metric][mode.label()].as_f64();
                assert!(
                    v.is_some_and(|x| x > 0.0),
                    "{backend_metric}/{} must be positive",
                    mode.label()
                );
            }
        }
        assert!(metrics["sim_events_per_sec"]["speedup"].as_f64().unwrap() > 0.0);
        // The document round-trips through the JSON writer.
        let rendered = doc.to_string_pretty();
        assert!(rendered.contains("splash4-bench-v1"));
    }
}
