//! Perf-regression harness: microbenchmarks for the suite's hot paths.
//!
//! `splash4-report --bench` runs this and writes `BENCH_results.json` in the
//! `splash4-bench-v2` schema. Every workload is fixed (deterministic
//! construction, no RNG at run time beyond a seeded LCG); every metric is
//! measured through [`crate::measure`]: adaptive repetition until the
//! bootstrap 95 % CI of the median is tight (or a rep cap), summarized as
//! `{median, ci_lo, ci_hi, reps, cv, samples}`. Carrying the interval is
//! what lets `splash4-report --compare` gate regressions on noisy hosts
//! instead of merely archiving numbers (`DESIGN.md` §11).
//!
//! Covered surfaces, per `DESIGN.md` §10:
//! - reducer ops/sec for every sync generation (lock-based, CAS-loop,
//!   flat-combining), plus the host-normalized lock-free/lock-based and
//!   combining/lock-free ratios,
//! - `GETSUB` counter grabs/sec per generation, plus the ratios and a
//!   *paired* splash4x/splash4 drain ratio (the `combining` group's
//!   headline),
//! - barrier crossings/sec per generation, plus the ratios,
//! - simulator events/sec for the indexed [`Engine`] against the preserved
//!   binary-heap reference ([`engine::run_reference`]) on identical
//!   programs, with the speedup summarized from *paired per-repetition
//!   ratios* so host frequency drift cancels,
//! - end-to-end wall time of one simulation-driven report experiment.

use crate::experiments::ExperimentCtx;
use crate::measure::{measure_adaptive, time_adaptive, MeasureConfig, Summary};
use crate::registry::BenchmarkId;
use crate::service::{run_loadgen, ServiceConfig, WorkerPool};
use crate::tables::{geomean, Table};
use splash4_kernels::InputClass;
use splash4_parmacs::{json, Json, PhaseSpec, SyncEnv, SyncMode, TaskQueue, Team, WorkModel};
use splash4_reclaim::{PoolShape, ReclaimKind, TaskPool};
use splash4_sim::{engine, model, BarrierKind, MachineParams, Op, Program};
use std::time::Instant;

/// Tuning knobs for one bench run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Statistical stopping rule (reps, CI target, bootstrap size).
    pub measure: MeasureConfig,
    /// Threads used for the native synchronization microbenchmarks.
    pub threads: usize,
    /// Per-thread operations in the reducer / counter microbenchmarks.
    pub sync_ops: usize,
    /// Per-thread operations in each atomic cost-matrix cell (`--bench
    /// atomics`).
    pub atomic_ops: usize,
    /// Barrier crossings per thread.
    pub barrier_crossings: usize,
    /// Cores in the synthetic simulator program.
    pub sim_cores: usize,
    /// Operations per core in the synthetic simulator program.
    pub sim_ops_per_core: usize,
    /// `true` for the CI-sized run (`--quick`).
    pub quick: bool,
    /// Simulated cores for the serve scale-out benchmarks (the scaling
    /// study's headline point, 1024).
    pub serve_sim_cores: usize,
    /// Requests the serve load generator drives through the worker pool.
    pub serve_requests: usize,
    /// Operations per core in each serve sim request.
    pub serve_ops_per_core: usize,
    /// Workloads the end-to-end report benchmark covers (`--only` narrows
    /// this; the synchronization and simulator microbenchmarks are
    /// workload-independent and always run).
    pub benchmarks: Vec<BenchmarkId>,
}

impl BenchConfig {
    /// Full-size configuration (local perf tracking).
    pub fn full() -> BenchConfig {
        BenchConfig {
            measure: MeasureConfig::full(),
            threads: 4,
            sync_ops: 100_000,
            atomic_ops: 200_000,
            barrier_crossings: 10_000,
            sim_cores: 32,
            sim_ops_per_core: 4_000,
            quick: false,
            serve_sim_cores: 1024,
            serve_requests: 24,
            serve_ops_per_core: 400,
            benchmarks: BenchmarkId::all(),
        }
    }

    /// CI-sized configuration: same shape, ~10× less work, looser CI target.
    /// The serve benchmarks keep p=1024 even here — demonstrating a
    /// 1024-core simulation completing under CI is the point — and shrink
    /// only the per-core work and request count.
    pub fn quick() -> BenchConfig {
        BenchConfig {
            measure: MeasureConfig::quick(),
            threads: 4,
            sync_ops: 10_000,
            atomic_ops: 20_000,
            barrier_crossings: 1_000,
            sim_cores: 16,
            sim_ops_per_core: 800,
            quick: true,
            serve_sim_cores: 1024,
            serve_requests: 8,
            serve_ops_per_core: 100,
            benchmarks: BenchmarkId::all(),
        }
    }

    /// The stopping rule for the end-to-end wall benchmark: same CI target,
    /// but fewer repetitions — one sample is a whole report experiment.
    fn wall_measure(&self) -> MeasureConfig {
        MeasureConfig {
            min_reps: self.measure.min_reps.min(3),
            max_reps: self.measure.max_reps.min(5),
            ..self.measure
        }
    }
}

/// Reducer `add` throughput under full contention, one summary per back-end.
fn bench_reducers(cfg: &BenchConfig) -> Vec<(SyncMode, Summary)> {
    SyncMode::ALL
        .map(|mode| {
            let env = SyncEnv::new(mode, cfg.threads);
            let r = env.reducer_f64();
            let secs = time_adaptive(&cfg.measure, || {
                Team::new(cfg.threads).run(|_| {
                    for i in 0..cfg.sync_ops {
                        r.add(i as f64);
                    }
                });
            });
            (mode, secs.to_rate((cfg.threads * cfg.sync_ops) as u64))
        })
        .to_vec()
}

/// `GETSUB` grab throughput: the team drains a shared index range.
fn bench_counters(cfg: &BenchConfig) -> Vec<(SyncMode, Summary)> {
    SyncMode::ALL
        .map(|mode| {
            let env = SyncEnv::new(mode, cfg.threads);
            let total = cfg.threads * cfg.sync_ops;
            let c = env.counter("bench", 0..total);
            let secs = time_adaptive(&cfg.measure, || {
                c.reset();
                Team::new(cfg.threads).run(|_| while c.next().is_some() {});
            });
            (mode, secs.to_rate(total as u64))
        })
        .to_vec()
}

/// Barrier crossing throughput (whole-team crossings per second).
fn bench_barriers(cfg: &BenchConfig) -> Vec<(SyncMode, Summary)> {
    SyncMode::ALL
        .map(|mode| {
            let env = SyncEnv::new(mode, cfg.threads);
            let b = env.barrier();
            let secs = time_adaptive(&cfg.measure, || {
                Team::new(cfg.threads).run(|ctx| {
                    for _ in 0..cfg.barrier_crossings {
                        b.wait(ctx.tid);
                    }
                });
            });
            (mode, secs.to_rate(cfg.barrier_crossings as u64))
        })
        .to_vec()
}

/// The atomic ops the cost matrix times, in emission order.
const ATOMIC_OPS: [&str; 5] = ["cas", "faa", "swp", "load", "store"];

/// One timed pass of `n` back-to-back atomic ops on `x` by the calling
/// thread. Every iteration is exactly one hardware atomic (the CAS variant
/// feeds each attempt's observed value into the next, so failures retry
/// without an extra load); `Relaxed` ordering keeps the measurement at the
/// instruction's hardware cost — on the measured ISAs, stronger orderings
/// change fencing, which the simulator does not model separately.
fn atomic_pass(op: &str, x: &std::sync::atomic::AtomicU64, n: usize) {
    use std::hint::black_box;
    use std::sync::atomic::Ordering::Relaxed;
    match op {
        "cas" => {
            let mut prev = x.load(Relaxed);
            for _ in 0..n {
                prev = match x.compare_exchange_weak(prev, prev.wrapping_add(1), Relaxed, Relaxed) {
                    Ok(seen) => seen.wrapping_add(1),
                    Err(seen) => seen,
                };
            }
            black_box(prev);
        }
        "faa" => {
            let mut acc = 0u64;
            for _ in 0..n {
                acc ^= x.fetch_add(1, Relaxed);
            }
            black_box(acc);
        }
        "swp" => {
            let mut acc = 0u64;
            for i in 0..n {
                acc ^= x.swap(i as u64, Relaxed);
            }
            black_box(acc);
        }
        "load" => {
            let mut acc = 0u64;
            for _ in 0..n {
                acc ^= x.load(Relaxed);
            }
            black_box(acc);
        }
        "store" => {
            for i in 0..n {
                x.store(i as u64, Relaxed);
            }
        }
        other => unreachable!("unknown atomic op {other}"),
    }
}

/// The measured atomic cost matrix (`--bench atomics`): every op in
/// [`ATOMIC_OPS`] timed across contention levels (1, 2, and `cfg.threads`
/// threads hammering *one* cache-padded location — true sharing) and across
/// the padding pair (`cfg.threads` threads on *per-thread* slots, packed
/// into one cache line vs `CachePadded` — false sharing vs none). Cells are
/// nanoseconds per operation:
///
/// - contended cells report the *aggregate* cost `elapsed / (c · n)` — at
///   c=1 that is the local latency, at c=p the serialized service time of
///   the shared line, which is exactly what `sim::calibrate` lowers into
///   `rmw_local_ns` / `rmw_service_ns`;
/// - padding cells report the per-thread latency `elapsed / n`, since the
///   threads proceed in parallel on distinct locations.
///
/// Every cell is host-absolute (classified `Wall` by the compare layer:
/// gate-eligible only between matching configs on the same host,
/// informational otherwise) — per Schweizer/Besta/Hoefler these costs *are*
/// host properties, which is the reason they feed calibration instead of a
/// cross-host gate.
fn bench_atomics(cfg: &BenchConfig) -> Vec<(String, Summary)> {
    use splash4_parmacs::CachePadded;
    use std::sync::atomic::AtomicU64;
    let n = cfg.atomic_ops;
    let mut cells: Vec<(String, Summary)> = Vec::new();
    for op in ATOMIC_OPS {
        // True sharing: c threads on one padded location.
        for c in splash4_sim::contention_levels(cfg.threads) {
            let shared = CachePadded::new(AtomicU64::new(0));
            let secs = time_adaptive(&cfg.measure, || {
                Team::new(c).run(|_| atomic_pass(op, &shared, n));
            });
            cells.push((format!("{op}_c{c}_ns"), secs.scale(1e9 / (c * n) as f64)));
        }
        // False sharing vs padded: per-thread slots, one line vs one line each.
        let packed: Vec<AtomicU64> = (0..cfg.threads).map(|_| AtomicU64::new(0)).collect();
        let secs = time_adaptive(&cfg.measure, || {
            Team::new(cfg.threads).run(|ctx| atomic_pass(op, &packed[ctx.tid], n));
        });
        cells.push((format!("{op}_falseshare_ns"), secs.scale(1e9 / n as f64)));
        let padded: Vec<CachePadded<AtomicU64>> = (0..cfg.threads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect();
        let secs = time_adaptive(&cfg.measure, || {
            Team::new(cfg.threads).run(|ctx| atomic_pass(op, &padded[ctx.tid], n));
        });
        cells.push((format!("{op}_padded_ns"), secs.scale(1e9 / n as f64)));
    }
    cells
}

/// The summary measured for one sync generation in a per-mode group, looked
/// up by mode rather than by position so callers name their baseline
/// explicitly instead of assuming a two-element layout.
fn mode_summary(pairs: &[(SyncMode, Summary)], mode: SyncMode) -> &Summary {
    &pairs
        .iter()
        .find(|(m, _)| *m == mode)
        .unwrap_or_else(|| panic!("mode {} was not measured in this group", mode.label()))
        .1
}

/// Host-normalized ratio of generation `num` over the explicit baseline
/// generation `base` within one per-mode group.
fn group_ratio(pairs: &[(SyncMode, Summary)], num: SyncMode, base: SyncMode) -> Summary {
    mode_summary(pairs, num).ratio_vs(mode_summary(pairs, base))
}

/// The combining generation's headline metric: the paired per-repetition
/// ratio of the splash4x combining counter against splash4's `fetch_add`
/// counter on the same fully contended `GETSUB` drain. The two drains are
/// interleaved within each repetition and the adaptive stopping rule watches
/// the ratio's CI, so host frequency drift shifts both halves of a pair
/// together and cancels — the same trick the sim-engine speedup uses. At
/// bench thread counts combining usually *loses* to raw `fetch_add` (one
/// uncontended RMW is hard to beat); the sim-backed F9 experiment is where
/// the high-`p` crossover shows. The gate's job here is to keep the native
/// ratio from collapsing, not to prove it exceeds 1.
fn bench_combining_paired(cfg: &BenchConfig) -> Summary {
    let total = cfg.threads * cfg.sync_ops;
    let combining_env = SyncEnv::new(SyncMode::Combining, cfg.threads);
    let lockfree_env = SyncEnv::new(SyncMode::LockFree, cfg.threads);
    let combining = combining_env.counter("paired", 0..total);
    let lockfree = lockfree_env.counter("paired", 0..total);
    measure_adaptive(&cfg.measure, || {
        let t0 = Instant::now();
        combining.reset();
        Team::new(cfg.threads).run(|_| while combining.next().is_some() {});
        let combining_secs = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        lockfree.reset();
        Team::new(cfg.threads).run(|_| while lockfree.next().is_some() {});
        let lockfree_secs = t0.elapsed().as_secs_f64();
        lockfree_secs / combining_secs.max(1e-12)
    })
}

/// Dynamic-pool churn throughput: the reclaiming task pools against the
/// suite's index-based retire-list stack, `cfg.threads` threads each doing
/// `cfg.sync_ops` push+pop pairs on one shared LIFO pool.
///
/// Churn is the shape that separates the designs: every push allocates a
/// node and every pop retires one, so the reclaiming pools pay their
/// protocol (epoch announce/advance vs hazard publish/scan) on every
/// operation while the index-based stack recycles from its retire list for
/// free — the measured ratios are the price of unbounded producers, and the
/// epoch-vs-hazard ratio is the paper-familiar EBR/HP crossover under
/// maximum reclamation pressure.
fn bench_reclaim(cfg: &BenchConfig) -> ([Summary; 3], Summary, Summary) {
    let churn = |pool: &dyn TaskQueue<usize>| -> Summary {
        let secs = time_adaptive(&cfg.measure, || {
            Team::new(cfg.threads).run(|_| {
                for i in 0..cfg.sync_ops {
                    pool.push(i);
                    let _ = pool.pop();
                }
            });
            // Interleaved pops can transiently leave items behind; drain so
            // repetitions start from the same (empty) state.
            while pool.pop().is_some() {}
        });
        secs.to_rate((cfg.threads * cfg.sync_ops * 2) as u64)
    };
    let env = SyncEnv::new(SyncMode::LockFree, cfg.threads);
    let index = churn(&*env.task_queue::<usize>());
    let pool = |kind| {
        TaskPool::<usize>::new(
            PoolShape::Lifo,
            kind,
            cfg.threads + 1,
            std::sync::Arc::clone(env.stats()),
        )
    };
    let epoch = churn(&pool(ReclaimKind::Epoch));
    let hazard = churn(&pool(ReclaimKind::Hazard));
    let epoch_vs_index_ratio = epoch.ratio_vs(&index);
    let epoch_vs_hazard_ratio = epoch.ratio_vs(&hazard);
    (
        [index, epoch, hazard],
        epoch_vs_index_ratio,
        epoch_vs_hazard_ratio,
    )
}

/// Deterministic synthetic simulator program: staggered compute, a mix of
/// shared and private server accesses with occasional contention penalties,
/// and periodic barriers — the op mix the experiment sweeps produce, built
/// from a seeded LCG so every bench run replays the same program. Public
/// because the serve service's `sim` requests are defined as exactly these
/// programs (same seed → same program → content-hashable result).
pub fn synthetic_program(
    cores: usize,
    ops_per_core: usize,
    kind: BarrierKind,
    seed: u64,
) -> Program {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let barrier_every = 97; // prime, so barriers don't phase-lock with the mix
    let mut program = Program {
        name: "perfbench-synthetic".into(),
        cores: vec![Vec::with_capacity(ops_per_core); cores],
        barriers: Vec::new(),
    };
    let mut ops_emitted = vec![0usize; cores];
    let mut slot = 0usize;
    while ops_emitted.iter().any(|&n| n < ops_per_core) {
        slot += 1;
        let place_barrier = slot.is_multiple_of(barrier_every);
        if place_barrier {
            let id = program.barriers.len() as u32;
            program.barriers.push(kind);
            for (c, stream) in program.cores.iter_mut().enumerate() {
                stream.push(Op::Barrier { id });
                ops_emitted[c] += 1;
            }
            continue;
        }
        for (c, stream) in program.cores.iter_mut().enumerate() {
            if ops_emitted[c] >= ops_per_core {
                continue;
            }
            let r = next();
            let op = if r % 5 == 0 {
                Op::Access {
                    server: (r % 3) as u32, // 3 shared servers → real queueing
                    n: 1 + r % 4,
                    service_ns: 40 + r % 60,
                    local_ns: 15,
                    contended_ns: if r % 7 == 0 { 400 } else { 0 },
                }
            } else {
                Op::Compute {
                    ns: 50 + (r % 900) + c as u64 * 3,
                }
            };
            stream.push(op);
            ops_emitted[c] += 1;
        }
    }
    program
}

/// Simulator throughput: the indexed engine vs the preserved heap reference
/// on byte-identical programs. Returns `(engine, reference, speedup)`
/// summaries; the two runs are also checked for result equality, so the
/// bench doubles as an equivalence test on programs far larger than the
/// unit tests use.
///
/// The two engines are interleaved within each repetition and the speedup is
/// summarized from the **per-repetition ratio** `reference_secs /
/// engine_secs`: CPU frequency and thermal drift shift both halves of a
/// pair together and cancel out of the ratio (back-to-back blocks were
/// observed to swing the measured speedup by ±40 % on a busy host). The
/// adaptive stopping rule watches the ratio's CI — the quantity the gate
/// cares about — not the absolute rates.
fn bench_sim_events(cfg: &BenchConfig) -> (Summary, Summary, Summary) {
    let machine = MachineParams::epyc_like();
    let work = WorkModel::new("perfbench")
        .phase(
            PhaseSpec::compute("sweep", cfg.sim_ops_per_core as u64, 90)
                .reduces(0.02)
                .barriers(2)
                .repeats(12),
        )
        .phase(
            PhaseSpec::compute("update", (cfg.sim_ops_per_core / 2) as u64, 45)
                .barriers(1)
                .repeats(24),
        );
    let mut programs: Vec<Program> = Vec::new();
    for cores in [cfg.sim_cores / 2, cfg.sim_cores, cfg.sim_cores * 2] {
        for mode in SyncMode::ALL {
            programs.push(model::expand(
                &work,
                splash4_parmacs::SyncPolicy::uniform(mode),
                cores.max(1),
                &machine,
            ));
        }
    }
    let kinds = [BarrierKind::Sense, BarrierKind::Condvar, BarrierKind::Tree];
    for (i, &k) in kinds.iter().enumerate() {
        programs.push(synthetic_program(
            cfg.sim_cores,
            cfg.sim_ops_per_core,
            k,
            0x5eed + i as u64,
        ));
    }
    let total_events: u64 = programs.iter().map(|p| p.total_ops() as u64).sum();

    // Doubles as warmup for the timed loops below.
    let mut eng = engine::Engine::new();
    for p in &programs {
        let fast = eng.run(p, &machine);
        let reference = engine::run_reference(p, &machine);
        assert_eq!(
            fast, reference,
            "indexed engine must match the heap reference on {}",
            p.name
        );
    }

    let mut fast_secs: Vec<f64> = Vec::new();
    let mut ref_secs: Vec<f64> = Vec::new();
    // One adaptive measurement over the paired ratio; the absolute per-side
    // samples are collected alongside and summarized afterwards.
    let speedup = measure_adaptive(&cfg.measure, || {
        let t0 = Instant::now();
        for p in &programs {
            let _ = eng.run(p, &machine);
        }
        let fast = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for p in &programs {
            let _ = engine::run_reference(p, &machine);
        }
        let reference = t0.elapsed().as_secs_f64();
        fast_secs.push(fast);
        ref_secs.push(reference);
        reference / fast.max(1e-12)
    });
    let resamples = cfg.measure.resamples;
    (
        Summary::from_samples(&fast_secs, resamples).to_rate(total_events),
        Summary::from_samples(&ref_secs, resamples).to_rate(total_events),
        speedup,
    )
}

/// Serve throughput: requests/sec and simulated events/sec of the worker
/// pool under the scale-out load (8 concurrent clients, p=1024 sim
/// requests, 50 % duplicates exercising the content-hashed cache exactly as
/// the service does). One repetition is a whole service lifecycle — pool
/// start, mixed concurrent load, graceful drain — so the rates include
/// every cost a real `splash4-serve` deployment pays except the sockets.
fn bench_serve_throughput(cfg: &BenchConfig) -> (Summary, Summary, u64) {
    const CLIENTS: usize = 8;
    let mut sim_events = 0u64;
    let wall = time_adaptive(&cfg.wall_measure(), || {
        let pool = WorkerPool::start(ServiceConfig {
            workers: 4,
            cache_capacity: 64,
            queue_capacity: 64,
            default_timeout_ms: None,
            // The sim-only load never touches the ctx; keep it minimal so a
            // repetition costs nothing beyond the service itself.
            ctx: ExperimentCtx {
                benchmarks: Vec::new(),
                ..ExperimentCtx::default()
            },
        });
        let report = run_loadgen(
            &pool,
            cfg.serve_requests,
            CLIENTS,
            cfg.serve_sim_cores,
            cfg.serve_ops_per_core,
        )
        .expect("serve loadgen");
        sim_events = report.sim_events;
        pool.shutdown();
    });
    (
        wall.to_rate(cfg.serve_requests as u64),
        wall.to_rate(sim_events),
        sim_events,
    )
}

/// The many-core retime optimization, measured as a paired ratio at
/// p=`serve_sim_cores`: the preserved binary-heap reference (which pays
/// O(p log p) re-insertions on every broadcast barrier release) against the
/// winner-tree engine with the uniform template fill and early-exit retimes.
/// Identical programs, interleaved timings, so host frequency drift cancels;
/// the ratio is the before/after of the scale-out work and gates cross-host
/// like every other ratio metric. The returned note is the human-readable
/// before/after line.
///
/// (The `set_full_rebuild_release` knob A/Bs the release fill against the
/// compare-based rebuild inside the same engine; both are O(p) per release,
/// so that pair does not statistically resolve on end-to-end runs — the
/// equivalence tests use the knob, the bench measures against the heap.)
fn bench_serve_retime(cfg: &BenchConfig) -> (Summary, String) {
    let machine = MachineParams::manycore(cfg.serve_sim_cores);
    let programs: Vec<Program> = [BarrierKind::Sense, BarrierKind::Tree]
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            synthetic_program(
                cfg.serve_sim_cores,
                cfg.serve_ops_per_core,
                k,
                0xba5e + i as u64,
            )
        })
        .collect();
    let mut tree_engine = engine::Engine::new();
    // Warmup, doubling as an equivalence check: the winner-tree engine must
    // be bit-identical to the heap reference at this scale (the release
    // template fill and the early-exit retimes change no result).
    for p in &programs {
        assert_eq!(
            tree_engine.run(p, &machine),
            engine::run_reference(p, &machine),
            "winner-tree engine must match the heap reference on {}",
            p.name
        );
    }
    let mut ref_secs: Vec<f64> = Vec::new();
    let mut tree_secs: Vec<f64> = Vec::new();
    let speedup = measure_adaptive(&cfg.measure, || {
        let t0 = Instant::now();
        for p in &programs {
            let _ = engine::run_reference(p, &machine);
        }
        let reference = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for p in &programs {
            let _ = tree_engine.run(p, &machine);
        }
        let tree = t0.elapsed().as_secs_f64();
        ref_secs.push(reference);
        tree_secs.push(tree);
        reference / tree.max(1e-12)
    });
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let note = format!(
        "serve retime note: barrier retime at p={} — heap reference {:.2} ms vs winner-tree engine {:.2} ms per pass ({:.2}x)",
        cfg.serve_sim_cores,
        median(&mut ref_secs) * 1e3,
        median(&mut tree_secs) * 1e3,
        speedup.median,
    );
    (speedup, note)
}

/// Wall time of one full simulation-driven report experiment (F2), in
/// seconds. Uses a fresh ctx per repetition so the model cache and program
/// memoization are exercised exactly as a cold `splash4-report` run would.
fn bench_report_wall(cfg: &BenchConfig) -> Summary {
    let sim_threads = if cfg.quick {
        vec![1, 8, 64]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    time_adaptive(&cfg.wall_measure(), || {
        let ctx = ExperimentCtx {
            class: InputClass::Test,
            sim_threads: sim_threads.clone(),
            benchmarks: cfg.benchmarks.clone(),
            ..ExperimentCtx::default()
        };
        crate::experiments::run_experiment("F2-sim-epyc", &ctx).expect("F2 runs");
    })
}

/// Format one summary as `median [ci_lo, ci_hi] (n=reps)` with a unit scale.
fn fmt_summary(s: &Summary, scale: f64, unit: &str) -> String {
    format!(
        "{:.3} [{:.3}, {:.3}] {unit} (n={})",
        s.median / scale,
        s.ci_lo / scale,
        s.ci_hi / scale,
        s.reps
    )
}

/// Append the atomic cost-matrix cells to the bench table, one row per
/// cell, labeled `atomic <op>` / `<cell>` (e.g. `c1`, `c4`, `falseshare`,
/// `padded`).
fn atomics_rows(t: &mut Table, cells: &[(String, Summary)]) {
    for (name, s) in cells {
        let trimmed = name.strip_suffix("_ns").unwrap_or(name);
        let (op, cell) = trimmed.split_once('_').unwrap_or((trimmed, ""));
        t.row(vec![
            format!("atomic {op}"),
            cell.into(),
            fmt_summary(s, 1.0, "ns/op"),
        ]);
    }
}

/// The `atomics` metric group: every cost-matrix cell as a summary object,
/// keyed by its flat cell name (`faa_c2_ns`, `store_padded_ns`, …).
fn atomics_group(cells: &[(String, Summary)]) -> Json {
    Json::Object(
        cells
            .iter()
            .map(|(name, s)| (name.clone(), s.to_json()))
            .collect(),
    )
}

/// Run only the atomic cost matrix (`--bench atomics`) and render the
/// results.
///
/// The returned document is a *subset* `splash4-bench-v2`: the same config
/// block as a full run, but only the `atomics` metric group. It validates
/// and compares like any other bench document, and it is the input
/// `splash4-report --calibrate` lowers into a host machine profile — the
/// point of the subset form is that CI can measure the matrix in seconds
/// without paying for the full suite.
pub fn run_bench_atomics(cfg: &BenchConfig) -> (String, Json) {
    let atomics = bench_atomics(cfg);
    let mut t = Table::new(vec!["metric", "backend", "median [95% CI]"]);
    atomics_rows(&mut t, &atomics);
    let doc = json!({
        "schema": "splash4-bench-v2",
        "config": json!({
            "quick": cfg.quick,
            "threads": cfg.threads as u64,
            "atomic_ops": cfg.atomic_ops as u64,
            "measure": json!({
                "min_reps": cfg.measure.min_reps as u64,
                "max_reps": cfg.measure.max_reps as u64,
                "target_rci": cfg.measure.target_rci,
                "resamples": cfg.measure.resamples as u64,
            }),
        }),
        "metrics": json!({
            "atomics": atomics_group(&atomics),
        }),
    });
    (t.render(), doc)
}

/// One workload-family bench group: family name, per-mode churn summaries,
/// and the lockfree/lock ratio the compare gate watches.
type FamilyGroup = (&'static str, Vec<(SyncMode, Summary)>, Summary);

/// End-to-end churn throughput of the registry-extension workload families
/// — `cmap` in map operations/sec, `stream` in pipeline items/sec — one
/// summary per back-end. These become the `cmap.*`/`stream.*` v2 groups the
/// compare gate watches, so a regression in either family's lock-free path
/// (the Harris–Michael buckets, the Vyukov rings) fails CI like any other
/// primitive group.
fn bench_families(cfg: &BenchConfig) -> Vec<(&'static str, Vec<(SyncMode, Summary)>)> {
    let cmap_ops = splash4_kernels::cmap::CMapConfig::class(InputClass::Test).ops as u64;
    let stream_items = splash4_kernels::stream::StreamConfig::class(InputClass::Test).items as u64;
    [
        (BenchmarkId::Cmap, cmap_ops),
        (BenchmarkId::Stream, stream_items),
    ]
    .map(|(b, ops)| {
        let pairs = SyncMode::ALL
            .map(|mode| {
                let env = SyncEnv::new(mode, cfg.threads);
                let secs = time_adaptive(&cfg.measure, || {
                    let r = b.run(InputClass::Test, &env);
                    assert!(r.validated, "{} invalid during bench", b.name());
                });
                (mode, secs.to_rate(ops))
            })
            .to_vec();
        (b.name(), pairs)
    })
    .to_vec()
}

/// Run every microbenchmark and render the results.
///
/// The returned `(text, json)` pair is what `splash4-report --bench` prints
/// and writes: the JSON document is the `splash4-bench-v2` schema that
/// `splash4-report --validate` checks and `--compare` gates on.
pub fn run_bench(cfg: &BenchConfig) -> (String, Json) {
    let atomics = bench_atomics(cfg);
    let reducers = bench_reducers(cfg);
    let counters = bench_counters(cfg);
    let barriers = bench_barriers(cfg);
    let (engine_eps, reference_eps, speedup) = bench_sim_events(cfg);
    let report_wall = bench_report_wall(cfg);
    let (serve_rps, serve_eps, serve_events) = bench_serve_throughput(cfg);
    let (serve_retime, retime_note) = bench_serve_retime(cfg);
    let (
        [reclaim_index, reclaim_epoch, reclaim_hazard],
        epoch_vs_index_ratio,
        epoch_vs_hazard_ratio,
    ) = bench_reclaim(cfg);
    let families: Vec<FamilyGroup> = bench_families(cfg)
        .into_iter()
        .map(|(name, pairs)| {
            let ratio = group_ratio(&pairs, SyncMode::LockFree, SyncMode::LockBased);
            (name, pairs, ratio)
        })
        .collect();

    // Host-normalized generation ratios, per primitive group: the classic
    // lock-free/lock-based (splash4/splash3) pair the v2 schema has always
    // carried under `ratio`, plus combining/lock-free (splash4x/splash4) for
    // the third generation.
    let reducer_ratio = group_ratio(&reducers, SyncMode::LockFree, SyncMode::LockBased);
    let counter_ratio = group_ratio(&counters, SyncMode::LockFree, SyncMode::LockBased);
    let barrier_ratio = group_ratio(&barriers, SyncMode::LockFree, SyncMode::LockBased);
    let reducer_combining = group_ratio(&reducers, SyncMode::Combining, SyncMode::LockFree);
    let counter_combining = group_ratio(&counters, SyncMode::Combining, SyncMode::LockFree);
    let barrier_combining = group_ratio(&barriers, SyncMode::Combining, SyncMode::LockFree);
    let combining_paired = bench_combining_paired(cfg);

    let mut t = Table::new(vec!["metric", "backend", "median [95% CI]"]);
    for (label, pairs, ratio, combining) in [
        ("reducer add", &reducers, &reducer_ratio, &reducer_combining),
        (
            "counter grab",
            &counters,
            &counter_ratio,
            &counter_combining,
        ),
        (
            "barrier crossing",
            &barriers,
            &barrier_ratio,
            &barrier_combining,
        ),
    ] {
        let (scale, unit) = if label == "barrier crossing" {
            (1e3, "k/s")
        } else {
            (1e6, "Mops/s")
        };
        for (mode, s) in pairs.iter() {
            t.row(vec![
                label.into(),
                mode.label().into(),
                fmt_summary(s, scale, unit),
            ]);
        }
        t.row(vec![
            label.into(),
            "lockfree/lock ratio".into(),
            fmt_summary(ratio, 1.0, "x"),
        ]);
        t.row(vec![
            label.into(),
            "combining/lockfree ratio".into(),
            fmt_summary(combining, 1.0, "x"),
        ]);
    }
    for (name, pairs, ratio) in &families {
        let label = format!("{name} churn");
        for (mode, s) in pairs.iter() {
            t.row(vec![
                label.clone(),
                mode.label().into(),
                fmt_summary(s, 1e6, "Mops/s"),
            ]);
        }
        t.row(vec![
            label,
            "lockfree/lock ratio".into(),
            fmt_summary(ratio, 1.0, "x"),
        ]);
    }
    t.row(vec![
        "combining crossover".into(),
        "splash4x/splash4 counter drain (paired)".into(),
        fmt_summary(&combining_paired, 1.0, "x"),
    ]);
    t.row(vec![
        "sim events".into(),
        "indexed engine".into(),
        fmt_summary(&engine_eps, 1e6, "Mops/s"),
    ]);
    t.row(vec![
        "sim events".into(),
        "heap reference".into(),
        fmt_summary(&reference_eps, 1e6, "Mops/s"),
    ]);
    t.row(vec![
        "sim engine speedup".into(),
        "indexed/heap (paired)".into(),
        fmt_summary(&speedup, 1.0, "x"),
    ]);
    t.row(vec![
        "F2 report wall".into(),
        "end-to-end".into(),
        fmt_summary(&report_wall, 1.0, "s"),
    ]);
    t.row(vec![
        "serve requests".into(),
        format!("pool, p={}", cfg.serve_sim_cores),
        fmt_summary(&serve_rps, 1.0, "req/s"),
    ]);
    t.row(vec![
        "serve sim events".into(),
        format!("pool, p={}", cfg.serve_sim_cores),
        fmt_summary(&serve_eps, 1e6, "Mops/s"),
    ]);
    t.row(vec![
        "serve retime speedup".into(),
        format!("heap-ref/winner-tree, p={} (paired)", cfg.serve_sim_cores),
        fmt_summary(&serve_retime, 1.0, "x"),
    ]);
    for (backend, s) in [
        ("index retire-list", &reclaim_index),
        ("epoch pool", &reclaim_epoch),
        ("hazard pool", &reclaim_hazard),
    ] {
        t.row(vec![
            "reclaim pool churn".into(),
            backend.into(),
            fmt_summary(s, 1e6, "Mops/s"),
        ]);
    }
    t.row(vec![
        "reclaim pool churn".into(),
        "epoch/index ratio".into(),
        fmt_summary(&epoch_vs_index_ratio, 1.0, "x"),
    ]);
    t.row(vec![
        "reclaim pool churn".into(),
        "epoch/hazard ratio".into(),
        fmt_summary(&epoch_vs_hazard_ratio, 1.0, "x"),
    ]);
    atomics_rows(&mut t, &atomics);

    let mut throughputs: Vec<f64> = [&reducers, &counters, &barriers]
        .iter()
        .flat_map(|pairs| pairs.iter().map(|(_, s)| s.median))
        .collect();
    throughputs.extend([
        engine_eps.median,
        reference_eps.median,
        serve_rps.median,
        serve_eps.median,
        reclaim_index.median,
        reclaim_epoch.median,
        reclaim_hazard.median,
    ]);
    throughputs.extend(
        families
            .iter()
            .flat_map(|(_, pairs, _)| pairs.iter().map(|(_, s)| s.median)),
    );
    let throughput_geomean = geomean(&throughputs);
    let mut ratios = vec![
        reducer_ratio.median,
        counter_ratio.median,
        barrier_ratio.median,
        reducer_combining.median,
        counter_combining.median,
        barrier_combining.median,
        combining_paired.median,
        speedup.median,
        serve_retime.median,
        epoch_vs_index_ratio.median,
        epoch_vs_hazard_ratio.median,
    ];
    ratios.extend(families.iter().map(|(_, _, r)| r.median));
    let ratio_geomean = geomean(&ratios);

    let group = |pairs: &[(SyncMode, Summary)], ratio: &Summary| {
        Json::Object(
            pairs
                .iter()
                .map(|(m, s)| (m.label().to_string(), s.to_json()))
                .chain(std::iter::once(("ratio".to_string(), ratio.to_json())))
                .collect(),
        )
    };
    let doc = json!({
        "schema": "splash4-bench-v2",
        "config": json!({
            "quick": cfg.quick,
            "threads": cfg.threads as u64,
            "sync_ops": cfg.sync_ops as u64,
            "barrier_crossings": cfg.barrier_crossings as u64,
            "sim_cores": cfg.sim_cores as u64,
            "sim_ops_per_core": cfg.sim_ops_per_core as u64,
            "atomic_ops": cfg.atomic_ops as u64,
            "serve_sim_cores": cfg.serve_sim_cores as u64,
            "serve_requests": cfg.serve_requests as u64,
            "serve_ops_per_core": cfg.serve_ops_per_core as u64,
            "measure": json!({
                "min_reps": cfg.measure.min_reps as u64,
                "max_reps": cfg.measure.max_reps as u64,
                "target_rci": cfg.measure.target_rci,
                "resamples": cfg.measure.resamples as u64,
            }),
        }),
        "metrics": json!({
            "reducer_ops_per_sec": group(&reducers, &reducer_ratio),
            "counter_grabs_per_sec": group(&counters, &counter_ratio),
            "barrier_crossings_per_sec": group(&barriers, &barrier_ratio),
            "sim_events_per_sec": json!({
                "engine": engine_eps.to_json(),
                "reference": reference_eps.to_json(),
                "speedup": speedup.to_json(),
            }),
            "report_wall_secs": report_wall.to_json(),
            "serve": json!({
                "requests_per_sec": serve_rps.to_json(),
                "events_per_sec_p1024": serve_eps.to_json(),
                "retime_speedup": serve_retime.to_json(),
                "sim_events_per_run": serve_events,
            }),
            "reclaim": json!({
                "index_pool_ops_per_sec": reclaim_index.to_json(),
                "epoch_pool_ops_per_sec": reclaim_epoch.to_json(),
                "hazard_pool_ops_per_sec": reclaim_hazard.to_json(),
                "epoch_vs_index_ratio": epoch_vs_index_ratio.to_json(),
                "epoch_vs_hazard_ratio": epoch_vs_hazard_ratio.to_json(),
            }),
            "combining": json!({
                "reducer_vs_lockfree_ratio": reducer_combining.to_json(),
                "counter_vs_lockfree_ratio": counter_combining.to_json(),
                "barrier_vs_lockfree_ratio": barrier_combining.to_json(),
                "combining_vs_lockfree_ratio": combining_paired.to_json(),
            }),
            "cmap": group(&families[0].1, &families[0].2),
            "stream": group(&families[1].1, &families[1].2),
            "atomics": atomics_group(&atomics),
        }),
        "aggregate": json!({
            "throughput_geomean_ops_per_sec": throughput_geomean,
            "ratio_geomean": ratio_geomean,
        }),
    });
    let mut text = t.render();
    text.push_str(&retime_note);
    text.push('\n');
    (text, doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{compare_texts, validate, BenchDoc, MetricClass};

    fn tiny() -> BenchConfig {
        BenchConfig {
            measure: MeasureConfig {
                min_reps: 2,
                max_reps: 3,
                target_rci: 0.5,
                resamples: 100,
            },
            threads: 2,
            sync_ops: 500,
            atomic_ops: 400,
            barrier_crossings: 50,
            sim_cores: 4,
            sim_ops_per_core: 120,
            quick: true,
            serve_sim_cores: 64,
            serve_requests: 4,
            serve_ops_per_core: 30,
            benchmarks: vec![BenchmarkId::Fft, BenchmarkId::Radix],
        }
    }

    #[test]
    fn synthetic_program_is_deterministic_and_valid() {
        let a = synthetic_program(8, 200, BarrierKind::Sense, 42);
        let b = synthetic_program(8, 200, BarrierKind::Sense, 42);
        assert_eq!(a, b, "same seed must build the same program");
        a.validate().expect("program validates");
        let c = synthetic_program(8, 200, BarrierKind::Sense, 43);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn bench_emits_v2_schema_that_validates_and_self_compares() {
        let (text, doc) = run_bench(&tiny());
        assert!(text.contains("sim engine speedup"));
        assert!(text.contains("serve requests"));
        assert!(
            text.contains("serve retime note"),
            "the before/after retime line must be in the bench output:\n{text}"
        );
        assert_eq!(doc["schema"].as_str(), Some("splash4-bench-v2"));
        assert!(doc["metrics"]["serve"]["requests_per_sec"]
            .get("median")
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0));
        assert!(doc["metrics"]["serve"]["retime_speedup"]
            .get("median")
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0));
        assert_eq!(doc["config"]["serve_sim_cores"].as_u64(), Some(64));
        let rendered = doc.to_string_pretty();
        // The document passes its own validator and decodes fully.
        validate(&rendered).expect("fresh bench document validates");
        let decoded = BenchDoc::parse(&rendered).expect("decodes");
        assert_eq!(decoded.version, 2);
        for m in &decoded.metrics {
            assert!(m.summary.median > 0.0, "{} must be positive", m.name);
            assert!(m.summary.reps >= 2, "{} must carry real reps", m.name);
            assert!(
                !m.summary.samples.is_empty() || m.name.ends_with("ratio"),
                "{} should record samples",
                m.name
            );
        }
        // The atomic cost matrix rides along in every full document: all 5
        // ops × (contention levels {1, threads} at threads=2, plus the
        // falseshare/padded pair), classified host-absolute.
        let cas_c1 = decoded.metric("atomics/cas_c1_ns").expect("cas c1 cell");
        assert_eq!(cas_c1.class, MetricClass::Wall);
        // The registry-extension family groups ride along: every back-end
        // plus the gate-eligible lockfree/lockbased ratio.
        for fam in ["cmap", "stream"] {
            for backend in ["splash3", "splash4", "splash4x"] {
                assert!(
                    decoded.metric(&format!("{fam}/{backend}")).is_some(),
                    "{fam}/{backend} missing"
                );
            }
            let r = decoded
                .metric(&format!("{fam}/ratio"))
                .expect("family ratio");
            assert_eq!(r.class, MetricClass::Ratio);
        }
        assert!(decoded.metric("atomics/faa_c2_ns").is_some());
        assert!(decoded.metric("atomics/store_padded_ns").is_some());
        assert!(decoded.metric("atomics/load_falseshare_ns").is_some());
        assert_eq!(doc["config"]["atomic_ops"].as_u64(), Some(400));
        // Self-comparison of a fresh document can never gate.
        let report = compare_texts(&rendered, &rendered).expect("self compare");
        assert!(report.pass());
        // Aggregates are present and sane.
        assert!(doc["aggregate"]["throughput_geomean_ops_per_sec"]
            .as_f64()
            .is_some_and(|v| v > 0.0));
        assert!(doc["aggregate"]["ratio_geomean"]
            .as_f64()
            .is_some_and(|v| v > 0.0));
    }

    #[test]
    fn atomics_subset_document_validates_and_calibrates() {
        let (text, doc) = run_bench_atomics(&tiny());
        assert!(text.contains("atomic cas"), "{text}");
        assert!(text.contains("falseshare"), "{text}");
        let rendered = doc.to_string_pretty();
        validate(&rendered).expect("atomics-only subset document validates");
        let decoded = BenchDoc::parse(&rendered).expect("decodes");
        assert!(decoded
            .metrics
            .iter()
            .all(|m| m.name.starts_with("atomics/")));
        // 5 ops × (contention levels {1, 2} at threads=2 + falseshare + padded).
        assert_eq!(decoded.metrics.len(), 5 * 4);
        // Subset self-comparison cannot gate (everything is Wall-class and
        // the configs match).
        let r = compare_texts(&rendered, &rendered).expect("self compare");
        assert!(r.configs_match && r.pass());
        // The subset document is exactly what `--calibrate` lowers.
        let base = MachineParams::epyc_like();
        let cal = splash4_sim::calibrate(&doc, &base).unwrap();
        assert!(cal.rmw_local_ns >= 1);
        assert!(cal.rmw_service_ns >= cal.rmw_local_ns);
        assert_eq!(cal.ghz, base.ghz);
    }
}
