//! `splash4-report` — regenerate the paper's tables and figures.
//!
//! ```text
//! splash4-report --list
//! splash4-report --experiment F2-sim-epyc [--class test|small|native]
//! splash4-report --all [--json-out results.json]
//! splash4-report --experiment F1-native --threads 1,2,4
//! splash4-report --all --only fft,radix
//! splash4-report --all --csv-dir results/csv
//! splash4-report --bench [--quick] [--bench-out BENCH_results.json] [--force]
//! splash4-report --bench atomics [--quick] [--bench-out atomics.json]
//! splash4-report --validate BENCH_results.json
//! splash4-report --compare results/BENCH_results.json BENCH_results.json
//! splash4-report --calibrate atomics.json [--profile-base epyc] [--profile-out host-profile.json]
//! splash4-report --experiment F2-sim-epyc --machine host-profile.json
//! ```
//!
//! `--validate` checks a bench document's schema and statistical invariants
//! (exit 1 on any violation); `--compare` runs the noise-aware regression
//! gate and exits non-zero only on a statistically resolvable regression —
//! the same binary serves local perf work and CI gating, with no Python on
//! the runners.
//!
//! `--bench atomics` runs only the atomic cost matrix (CAS/FAA/SWP/load/
//! store across contention levels and cache-line padding) and emits a subset
//! bench document; `--calibrate` lowers such a document's measured medians
//! into a simulator machine profile, and `--machine` points any
//! simulation-driven experiment at a preset name, inline profile JSON, or a
//! profile file (see `splash4_sim::MachineParams::resolve`).
//!
//! `--only` narrows the per-workload experiments (and the `--bench`
//! end-to-end wall benchmark) to a comma list of workload names, resolved
//! leniently through the registry (`FFT`, `water-nsquared`, and
//! `Water_NSquared` all work); `--list` prints both the experiment ids and
//! the workload names those filters accept.

use splash4_harness::{
    compare_texts, run_bench, run_bench_atomics, run_experiment, validate, write_guarded,
    BenchConfig, BenchmarkId, ExperimentCtx, ALL_EXPERIMENTS,
};
use splash4_kernels::InputClass;
use splash4_parmacs::{json, Json};
use splash4_sim::MachineParams;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: splash4-report (--list | --all | --experiment <id> | --bench [atomics] \
     | --validate <file> | --compare <baseline> <candidate> | --calibrate <bench.json>) \
     [--only bench[,bench...]] [--class test|small|native] \
     [--threads a,b,c] [--sim-threads a,b,c] [--machine <preset|file|json>] \
     [--snapshot-cores N] [--json-out FILE] [--csv-dir DIR] \
     [--quick] [--bench-out FILE] [--force] \
     [--profile-base <preset>] [--profile-out FILE]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut all = false;
    let mut list = false;
    let mut bench = false;
    let mut bench_atomics = false;
    let mut quick = false;
    let mut force = false;
    let mut calibrate_path: Option<String> = None;
    let mut profile_out = "host-profile.json".to_string();
    let mut profile_base = "epyc".to_string();
    let mut validate_path: Option<String> = None;
    let mut compare_paths: Option<(String, String)> = None;
    let mut bench_out = "BENCH_results.json".to_string();
    let mut ctx = ExperimentCtx::default();
    let mut json_out: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut only: Option<Vec<BenchmarkId>> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--only" => {
                let Some(spec) = it.next() else {
                    eprintln!("--only needs a comma list of workload names\n{}", usage());
                    return ExitCode::FAILURE;
                };
                let mut picked: Vec<BenchmarkId> = Vec::new();
                for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    let Some(b) = BenchmarkId::from_name(name) else {
                        let known: Vec<&str> =
                            BenchmarkId::all().iter().map(|b| b.name()).collect();
                        eprintln!(
                            "unknown workload '{name}'; known workloads: {}",
                            known.join(", ")
                        );
                        return ExitCode::FAILURE;
                    };
                    if !picked.contains(&b) {
                        picked.push(b);
                    }
                }
                if picked.is_empty() {
                    eprintln!("--only needs at least one workload name\n{}", usage());
                    return ExitCode::FAILURE;
                }
                // Keep suite order regardless of how the user listed them,
                // so filtered tables stay aligned with the full ones.
                picked.sort_by_key(|&b| b.index());
                only = Some(picked);
            }
            "--all" => all = true,
            "--bench" => {
                bench = true;
                // `--bench atomics` narrows the run to the atomic cost
                // matrix; the optional group name is peeked so a following
                // flag is left for the main loop.
                if it.clone().next().map(String::as_str) == Some("atomics") {
                    it.next();
                    bench_atomics = true;
                }
            }
            "--quick" => quick = true,
            "--force" => force = true,
            "--calibrate" => {
                let Some(path) = it.next() else {
                    eprintln!("--calibrate needs a bench JSON path\n{}", usage());
                    return ExitCode::FAILURE;
                };
                calibrate_path = Some(path.clone());
            }
            "--profile-out" => {
                let Some(path) = it.next() else {
                    eprintln!("--profile-out needs a path\n{}", usage());
                    return ExitCode::FAILURE;
                };
                profile_out = path.clone();
            }
            "--profile-base" => {
                let Some(spec) = it.next() else {
                    eprintln!("--profile-base needs a machine preset\n{}", usage());
                    return ExitCode::FAILURE;
                };
                profile_base = spec.clone();
            }
            "--machine" => {
                let Some(spec) = it.next() else {
                    eprintln!(
                        "--machine needs a preset name, profile file, or inline JSON\n{}",
                        usage()
                    );
                    return ExitCode::FAILURE;
                };
                match MachineParams::resolve(spec) {
                    Ok(m) => ctx.machine = Some(m),
                    Err(e) => {
                        eprintln!("--machine {spec}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--validate" => {
                let Some(path) = it.next() else {
                    eprintln!("--validate needs a path\n{}", usage());
                    return ExitCode::FAILURE;
                };
                validate_path = Some(path.clone());
            }
            "--compare" => {
                let (Some(base), Some(cand)) = (it.next(), it.next()) else {
                    eprintln!("--compare needs <baseline> <candidate> paths\n{}", usage());
                    return ExitCode::FAILURE;
                };
                compare_paths = Some((base.clone(), cand.clone()));
            }
            "--bench-out" => {
                let Some(path) = it.next() else {
                    eprintln!("--bench-out needs a path\n{}", usage());
                    return ExitCode::FAILURE;
                };
                bench_out = path.clone();
            }
            "--experiment" | "-e" => {
                experiment = it.next().cloned();
                if experiment.is_none() {
                    eprintln!("--experiment needs an id\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
            "--class" | "-c" => {
                let Some(c) = it.next().and_then(|s| InputClass::from_label(s)) else {
                    eprintln!("--class needs test|small|native\n{}", usage());
                    return ExitCode::FAILURE;
                };
                ctx.class = c;
            }
            "--threads" | "-t" => {
                let Some(list) = it.next().map(|s| parse_list(s)) else {
                    eprintln!("--threads needs a comma list\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match list {
                    Some(v) if !v.is_empty() => ctx.native_threads = v,
                    _ => {
                        eprintln!("--threads needs positive integers\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--sim-threads" => {
                let Some(list) = it.next().map(|s| parse_list(s)) else {
                    eprintln!("--sim-threads needs a comma list\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match list {
                    Some(v) if !v.is_empty() => ctx.sim_threads = v,
                    _ => {
                        eprintln!("--sim-threads needs positive integers\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--snapshot-cores" => {
                let Some(n) = it.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--snapshot-cores needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                ctx.snapshot_cores = n.max(1);
            }
            "--json-out" => {
                json_out = it.next().cloned();
                if json_out.is_none() {
                    eprintln!("--json-out needs a path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
            "--csv-dir" => {
                csv_dir = it.next().cloned();
                if csv_dir.is_none() {
                    eprintln!("--csv-dir needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(benches) = &only {
        ctx.benchmarks = benches.clone();
    }

    if list {
        println!("experiments:");
        for id in ALL_EXPERIMENTS {
            println!("  {id}");
        }
        println!("workloads (accepted by --only):");
        for b in BenchmarkId::all() {
            println!("  {:<16} {}", b.name(), b.input_description(ctx.class));
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = validate_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate(&text) {
            Ok(msg) => {
                println!("{path}: {msg}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: invalid bench document: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some((base_path, cand_path)) = compare_paths {
        let read =
            |p: &str| std::fs::read_to_string(p).map_err(|e| format!("failed to read {p}: {e}"));
        let report = read(&base_path)
            .and_then(|b| read(&cand_path).map(|c| (b, c)))
            .and_then(|(b, c)| compare_texts(&b, &c));
        return match report {
            Ok(r) => {
                print!("{}", r.to_text());
                if r.pass() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(path) = calibrate_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base = match MachineParams::resolve(&profile_base) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("--profile-base {profile_base}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let profile = match splash4_sim::calibrate(&doc, &base) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("calibration from {path} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "calibrated machine profile '{}' (base preset '{}'):",
            profile.name, base.name
        );
        println!(
            "  {:<18} {:>10} {:>10}",
            "parameter", base.name, profile.name
        );
        let rows: [(&str, u64, u64); 5] = [
            ("rmw_local_ns", base.rmw_local_ns, profile.rmw_local_ns),
            (
                "rmw_service_ns",
                base.rmw_service_ns,
                profile.rmw_service_ns,
            ),
            ("lock_pair_ns", base.lock_pair_ns, profile.lock_pair_ns),
            (
                "line_transfer_ns",
                base.line_transfer_ns,
                profile.line_transfer_ns,
            ),
            ("futex_wake_ns", base.futex_wake_ns, profile.futex_wake_ns),
        ];
        for (label, was, now) in rows {
            println!("  {label:<18} {was:>10} {now:>10}");
        }
        let source = format!("calibrated from {path} (base {})", base.name);
        let profile_doc = profile.to_profile_json(&source);
        if let Err(e) = write_guarded(
            Path::new(&profile_out),
            &profile_doc.to_string_pretty(),
            force,
        ) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {profile_out}");
        return ExitCode::SUCCESS;
    }

    if bench {
        let mut cfg = if quick {
            BenchConfig::quick()
        } else {
            BenchConfig::full()
        };
        if let Some(benches) = &only {
            cfg.benchmarks = benches.clone();
        }
        // Refuse to clobber an existing results file before spending minutes
        // measuring; the same guard runs again at write time.
        if Path::new(&bench_out).exists() && !force {
            eprintln!("refusing to overwrite existing {bench_out} (pass --force to replace it)");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "running perf bench ({}{} mode, {}-{} adaptive reps, CI target ±{:.0}%)...",
            if bench_atomics { "atomics group, " } else { "" },
            if quick { "quick" } else { "full" },
            cfg.measure.min_reps,
            cfg.measure.max_reps,
            cfg.measure.target_rci * 100.0
        );
        let (text, doc) = if bench_atomics {
            run_bench_atomics(&cfg)
        } else {
            run_bench(&cfg)
        };
        print!("{text}");
        if let Err(e) = write_guarded(Path::new(&bench_out), &doc.to_string_pretty(), force) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {bench_out}");
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if all {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else if let Some(e) = experiment {
        vec![e]
    } else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };

    let mut payloads = Vec::new();
    for id in &ids {
        match run_experiment(id, &ctx) {
            Ok(report) => {
                print!("{}", report.to_terminal());
                if let Some(dir) = &csv_dir {
                    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                        std::fs::write(format!("{dir}/{}.csv", report.id), &report.csv)
                    }) {
                        eprintln!("failed to write CSV for {}: {e}", report.id);
                        return ExitCode::FAILURE;
                    }
                }
                payloads.push(json!({
                    "id": report.id,
                    "title": report.title,
                    "data": report.json,
                }));
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = json_out {
        let doc = json!({ "experiments": payloads });
        if let Err(e) = std::fs::write(&path, doc.to_string_pretty()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn parse_list(s: &str) -> Option<Vec<usize>> {
    s.split(',')
        .map(|x| x.trim().parse::<usize>().ok().filter(|&v| v > 0))
        .collect()
}
