//! Experiment driver for the splash4-rs suite.
//!
//! Regenerates every table and figure of the paper reconstruction (see
//! `DESIGN.md` §4 for the experiment index) from the kernel registry, the
//! native runner and the timing simulator. The `splash4-report` binary is the
//! command-line front end.

#![warn(missing_docs)]

pub mod cache;
pub mod compare;
pub mod experiments;
pub mod measure;
pub mod perfbench;
pub mod registry;
pub mod service;
pub mod tables;

pub use cache::{fnv1a, ResultCache};
pub use compare::{
    compare, compare_texts, validate, write_guarded, BenchDoc, CompareReport, MetricClass, Verdict,
};
pub use experiments::{
    record_trace, run_experiment, work_model, ExperimentCtx, ModelCache, ALL_EXPERIMENTS,
};
pub use measure::{bootstrap_ci, measure_adaptive, time_adaptive, MeasureConfig, Summary};
pub use perfbench::{run_bench, run_bench_atomics, synthetic_program, BenchConfig};
pub use registry::BenchmarkId;
pub use service::{
    dispatch, drain_events, run_loadgen, JobCtl, JobEvent, LoadgenReport, Request, RequestKind,
    ServiceConfig, WorkerPool,
};
pub use tables::{geomean, pct_change, Report, Table};
