//! Bench-document model, validation, and the noise-aware regression gate.
//!
//! `splash4-report --validate` and `--compare` both run on the document
//! model in this module. A [`BenchDoc`] is the decoded form of a
//! `BENCH_results.json`: a flat list of named metrics, each carrying a
//! [`Summary`] and a [`MetricClass`]. Two schema generations decode into it:
//!
//! - **`splash4-bench-v2`** (current): every metric is a full
//!   `{median, ci_lo, ci_hi, reps, cv, samples}` object produced by
//!   [`crate::measure`];
//! - **`splash4-bench-v1`** (legacy, read-side shim): metrics are bare point
//!   estimates. They decode to summaries widened by an assumed legacy noise
//!   floor ([`LEGACY_RCI`], ±10 %) — the honest statement that a v1 number
//!   carries no confidence information — so pre-v2 history stays diffable
//!   and comparable without ever looking more certain than it is.
//!
//! The comparison itself is paired and class-aware. A delta only *gates*
//! (non-zero exit) when it is **statistically resolvable**: the two 95 %
//! intervals are disjoint in the regressing direction *and* the median
//! effect exceeds the metric class's minimum-effect threshold. Overlapping
//! intervals or sub-threshold effects report as within-noise. Absolute
//! metrics (throughput, wall seconds) additionally require the two
//! documents' workload configs to match — absolute rates from different
//! hosts or bench sizes are not commensurable — while ratio-class metrics
//! (lock-free/lock-based, engine/reference) are host-normalized and gate
//! unconditionally; this is the ratio-of-ratios trick that makes the gate
//! usable on noisy shared CI runners.

use crate::measure::{geomean_ratios, Summary};
use crate::tables::Table;
use splash4_parmacs::Json;
use std::path::Path;

/// Assumed relative noise floor for legacy v1 point estimates (half-width as
/// a fraction of the value).
pub const LEGACY_RCI: f64 = 0.10;

/// What a metric measures, which fixes its regression direction and its
/// minimum resolvable effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Operations per second; higher is better. Host-absolute.
    Throughput,
    /// Wall-clock seconds; lower is better. Host-absolute.
    Wall,
    /// A dimensionless ratio of two same-host measurements; higher is
    /// better. Host-normalized, so comparable across hosts and bench sizes.
    Ratio,
}

impl MetricClass {
    /// Minimum median effect (fractional departure from 1.0) a regression
    /// must show before it can gate. Below this, even a statistically
    /// resolved delta is reported but not enforced.
    pub fn min_effect(self) -> f64 {
        match self {
            // Native sync microbenches swing with scheduler placement.
            MetricClass::Throughput => 0.10,
            // End-to-end wall time folds in everything; be generous.
            MetricClass::Wall => 0.15,
            // Cross-host gating needs the widest margin of the three.
            MetricClass::Ratio => 0.20,
        }
    }

    /// `true` when smaller values are improvements (wall seconds).
    pub fn lower_is_better(self) -> bool {
        matches!(self, MetricClass::Wall)
    }

    /// `true` when the metric is comparable across hosts and bench sizes.
    pub fn portable(self) -> bool {
        matches!(self, MetricClass::Ratio)
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            MetricClass::Throughput => "thru",
            MetricClass::Wall => "wall",
            MetricClass::Ratio => "ratio",
        }
    }
}

/// One named, classed, summarized metric.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Flattened name, e.g. `reducer_ops_per_sec/splash4`.
    pub name: String,
    /// Regression semantics.
    pub class: MetricClass,
    /// The measurement.
    pub summary: Summary,
}

/// A decoded bench document.
#[derive(Debug, Clone)]
pub struct BenchDoc {
    /// Schema generation: 1 or 2.
    pub version: u32,
    /// The raw `config` block (workload sizing; compared for commensurability).
    pub config: Json,
    /// All metrics, in document order.
    pub metrics: Vec<Metric>,
}

/// The per-backend metric groups every document must carry.
const BACKEND_METRICS: [&str; 3] = [
    "reducer_ops_per_sec",
    "counter_grabs_per_sec",
    "barrier_crossings_per_sec",
];

/// The sync back-end labels every document must carry as JSON keys. The
/// third generation (`splash4x`, flat combining) arrived later and decodes
/// optionally — see [`OPTIONAL_BACKEND`].
const BACKENDS: [&str; 2] = ["splash3", "splash4"];

/// Back-end key that is decoded when present but not required, so documents
/// written before the combining generation keep validating and comparing.
const OPTIONAL_BACKEND: &str = "splash4x";

/// Per-backend groups for the registry-extension workload families, shaped
/// exactly like [`BACKEND_METRICS`] but optional: baselines written before
/// the `cmap`/`stream` families keep validating and comparing.
const FAMILY_METRICS: [&str; 2] = ["cmap", "stream"];

/// Config keys that define the workload shape; absolute metrics are only
/// gateable when these match between baseline and candidate. The two serve
/// keys decode as `Null` in documents predating the serve subsystem, so
/// old-vs-old comparisons still match (`Null == Null`) while old-vs-new
/// correctly demote absolute metrics to info-only.
const SHAPE_KEYS: [&str; 8] = [
    "quick",
    "threads",
    "sync_ops",
    "barrier_crossings",
    "sim_cores",
    "sim_ops_per_core",
    "serve_sim_cores",
    "serve_requests",
];

impl BenchDoc {
    /// Parse and validate bench JSON text (either schema generation).
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let doc = Json::parse(text)?;
        BenchDoc::from_json(&doc)
    }

    /// Decode a bench document, dispatching on its `schema` field.
    pub fn from_json(doc: &Json) -> Result<BenchDoc, String> {
        match doc["schema"].as_str() {
            Some("splash4-bench-v2") => BenchDoc::decode(doc, 2),
            Some("splash4-bench-v1") => BenchDoc::decode(doc, 1),
            Some(other) => Err(format!("unknown bench schema `{other}`")),
            None => Err("document has no `schema` string".into()),
        }
    }

    fn decode(doc: &Json, version: u32) -> Result<BenchDoc, String> {
        let config = doc["config"].clone();
        if config.as_object().is_none() {
            return Err("document has no `config` object".into());
        }
        if config["quick"].as_bool().is_none() {
            return Err("config has no boolean `quick`".into());
        }
        let metrics_json = &doc["metrics"];
        if metrics_json.as_object().is_none() {
            return Err("document has no `metrics` object".into());
        }
        // v1 stores bare numbers; v2 stores summary objects. `read` closes
        // over the difference so the flattening below is shared.
        let read = |v: &Json, what: &str| -> Result<Summary, String> {
            let s = if version == 1 {
                let n = v
                    .as_f64()
                    .ok_or_else(|| format!("metric `{what}`: expected a number (v1)"))?;
                widen_legacy(n)
            } else {
                Summary::from_json(v).map_err(|e| format!("metric `{what}`: {e}"))?
            };
            if !(s.median.is_finite() && s.median > 0.0) {
                return Err(format!("metric `{what}`: median must be positive"));
            }
            Ok(s)
        };

        // The core groups (per-backend sync throughput, sim engine rates,
        // report wall) are all-or-nothing: a full bench document must carry
        // every one of them, so a run that silently lost a group still fails
        // validation. Subset documents (`--bench atomics` writes config +
        // the `atomics` matrix only, as calibration input) carry *none* of
        // the core groups and decode to just the groups they have.
        let has_core = BACKEND_METRICS.iter().any(|g| !metrics_json[*g].is_null())
            || !metrics_json["sim_events_per_sec"].is_null()
            || !metrics_json["report_wall_secs"].is_null();

        let mut metrics = Vec::new();
        if has_core {
            for group in BACKEND_METRICS {
                let g = &metrics_json[group];
                if g.as_object().is_none() {
                    return Err(format!("missing metric group `{group}`"));
                }
                let mut per_backend = Vec::new();
                for backend in BACKENDS {
                    let name = format!("{group}/{backend}");
                    let s = read(&g[backend], &name)?;
                    per_backend.push(s.clone());
                    metrics.push(Metric {
                        name,
                        class: MetricClass::Throughput,
                        summary: s,
                    });
                }
                // The combining generation, when the document carries it.
                if !g[OPTIONAL_BACKEND].is_null() {
                    let name = format!("{group}/{OPTIONAL_BACKEND}");
                    metrics.push(Metric {
                        name: name.clone(),
                        class: MetricClass::Throughput,
                        summary: read(&g[OPTIONAL_BACKEND], &name)?,
                    });
                }
                // Lock-free over lock-based: the host-normalized form of the
                // group. v2 documents carry it; for v1 we derive it from the two
                // (already widened) point estimates.
                let ratio = match &g["ratio"] {
                    Json::Null if version == 1 => per_backend[1].ratio_vs(&per_backend[0]),
                    Json::Null => return Err(format!("metric group `{group}` missing `ratio`")),
                    v => read(v, &format!("{group}/ratio"))?,
                };
                metrics.push(Metric {
                    name: format!("{group}/ratio"),
                    class: MetricClass::Ratio,
                    summary: ratio,
                });
            }

            let sim = &metrics_json["sim_events_per_sec"];
            if sim.as_object().is_none() {
                return Err("missing metric group `sim_events_per_sec`".into());
            }
            for part in ["engine", "reference"] {
                metrics.push(Metric {
                    name: format!("sim_events_per_sec/{part}"),
                    class: MetricClass::Throughput,
                    summary: read(&sim[part], &format!("sim_events_per_sec/{part}"))?,
                });
            }
            metrics.push(Metric {
                name: "sim_events_per_sec/speedup".into(),
                class: MetricClass::Ratio,
                summary: read(&sim["speedup"], "sim_events_per_sec/speedup")?,
            });
            metrics.push(Metric {
                name: "report_wall_secs".into(),
                class: MetricClass::Wall,
                summary: read(&metrics_json["report_wall_secs"], "report_wall_secs")?,
            });
        }

        // The serve group (experiment-service throughput and the many-core
        // barrier-release retime ratio) arrived after v2 shipped; it is
        // optional so pre-serve documents keep validating and comparing.
        // When both sides carry it, `compare` picks it up by name like any
        // other metric.
        let serve = &metrics_json["serve"];
        if serve.as_object().is_some() {
            for (part, class) in [
                ("requests_per_sec", MetricClass::Throughput),
                ("events_per_sec_p1024", MetricClass::Throughput),
                ("retime_speedup", MetricClass::Ratio),
            ] {
                metrics.push(Metric {
                    name: format!("serve/{part}"),
                    class,
                    summary: read(&serve[part], &format!("serve/{part}"))?,
                });
            }
        } else if !serve.is_null() {
            return Err("`serve` metric group must be an object when present".into());
        }

        // The reclaim group (dynamic-pool churn vs the index-based stack,
        // and the EBR/HP crossover ratio) is optional for the same reason:
        // baselines written before the reclamation layer keep validating
        // and comparing on the metrics both sides carry.
        let reclaim = &metrics_json["reclaim"];
        if reclaim.as_object().is_some() {
            for (part, class) in [
                ("index_pool_ops_per_sec", MetricClass::Throughput),
                ("epoch_pool_ops_per_sec", MetricClass::Throughput),
                ("hazard_pool_ops_per_sec", MetricClass::Throughput),
                ("epoch_vs_index_ratio", MetricClass::Ratio),
                ("epoch_vs_hazard_ratio", MetricClass::Ratio),
            ] {
                metrics.push(Metric {
                    name: format!("reclaim/{part}"),
                    class,
                    summary: read(&reclaim[part], &format!("reclaim/{part}"))?,
                });
            }
        } else if !reclaim.is_null() {
            return Err("`reclaim` metric group must be an object when present".into());
        }

        // The combining group (third-generation flat-combining primitives
        // against the lock-free generation) is optional for the same
        // reason. Every member is a host-normalized ratio, so all of it
        // gates cross-host; `combining_vs_lockfree_ratio` is the paired
        // headline the CI `--compare` step watches.
        let combining = &metrics_json["combining"];
        if combining.as_object().is_some() {
            for part in [
                "reducer_vs_lockfree_ratio",
                "counter_vs_lockfree_ratio",
                "barrier_vs_lockfree_ratio",
                "combining_vs_lockfree_ratio",
            ] {
                metrics.push(Metric {
                    name: format!("combining/{part}"),
                    class: MetricClass::Ratio,
                    summary: read(&combining[part], &format!("combining/{part}"))?,
                });
            }
        } else if !combining.is_null() {
            return Err("`combining` metric group must be an object when present".into());
        }

        // The registry-extension workload families bench whole-kernel churn
        // per back-end (`cmap` map operations/sec, `stream` pipeline
        // items/sec). Optional so pre-extension baselines keep validating;
        // shape and classes mirror the core per-backend groups, so each
        // family's lockfree/lockbased ratio gates cross-host and the raw
        // rates gate between matching hosts.
        for group in FAMILY_METRICS {
            let g = &metrics_json[group];
            if g.as_object().is_none() {
                if !g.is_null() {
                    return Err(format!(
                        "`{group}` metric group must be an object when present"
                    ));
                }
                continue;
            }
            for backend in BACKENDS {
                let name = format!("{group}/{backend}");
                metrics.push(Metric {
                    name: name.clone(),
                    class: MetricClass::Throughput,
                    summary: read(&g[backend], &name)?,
                });
            }
            if !g[OPTIONAL_BACKEND].is_null() {
                let name = format!("{group}/{OPTIONAL_BACKEND}");
                metrics.push(Metric {
                    name: name.clone(),
                    class: MetricClass::Throughput,
                    summary: read(&g[OPTIONAL_BACKEND], &name)?,
                });
            }
            let name = format!("{group}/ratio");
            metrics.push(Metric {
                name: name.clone(),
                class: MetricClass::Ratio,
                summary: read(&g["ratio"], &name)?,
            });
        }

        // The atomic cost matrix (`--bench atomics`). Unlike every group
        // above, its cell set is open-ended — contention levels depend on
        // the measured thread count — so the decode is dynamic: every entry
        // must be a summary, and every cell is host-absolute nanoseconds
        // per op (`Wall`: lower is better, gate-eligible only between
        // matching configs, informational otherwise). Deliberately no
        // ratio-class atomics: per the paper, contended-atomic costs *are*
        // host properties — they feed `sim::calibrate`, not a cross-host
        // gate.
        let atomics = &metrics_json["atomics"];
        if let Some(entries) = atomics.as_object() {
            if entries.is_empty() {
                return Err("`atomics` metric group is empty".into());
            }
            for (cell, v) in entries {
                let name = format!("atomics/{cell}");
                let summary = read(v, &name)?;
                metrics.push(Metric {
                    name,
                    class: MetricClass::Wall,
                    summary,
                });
            }
        } else if !atomics.is_null() {
            return Err("`atomics` metric group must be an object when present".into());
        }

        if metrics.is_empty() {
            return Err("document carries no metric groups".into());
        }

        for m in &metrics {
            m.summary
                .check()
                .map_err(|e| format!("metric `{}`: {e}", m.name))?;
        }
        Ok(BenchDoc {
            version,
            config,
            metrics,
        })
    }

    /// `true` when the two documents ran the same workload shape (same
    /// quick/size knobs), making absolute metrics commensurable.
    pub fn config_matches(&self, other: &BenchDoc) -> bool {
        SHAPE_KEYS
            .iter()
            .all(|k| self.config[*k] == other.config[*k])
    }

    /// Look up a metric by flattened name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// A legacy point estimate widened by the assumed v1 noise floor.
fn widen_legacy(value: f64) -> Summary {
    let hw = value.abs() * LEGACY_RCI;
    Summary {
        median: value,
        ci_lo: value - hw,
        ci_hi: value + hw,
        reps: 1,
        cv: LEGACY_RCI,
        samples: vec![value],
    }
}

/// Validate bench JSON text: schema, structure, and summary invariants.
/// Returns a short human-readable description of what was checked.
pub fn validate(text: &str) -> Result<String, String> {
    let doc = BenchDoc::parse(text)?;
    Ok(format!(
        "splash4-bench-v{}: {} metrics ok ({} gateable cross-host)",
        doc.version,
        doc.metrics.len(),
        doc.metrics.iter().filter(|m| m.class.portable()).count()
    ))
}

/// Outcome for one metric in a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Delta within noise or below the class's minimum effect.
    WithinNoise,
    /// Statistically resolved improvement.
    Improved,
    /// Statistically resolved regression — gates.
    Regressed,
    /// Absolute metric under mismatched configs: reported, never gated.
    Informational,
    /// Metric present only in the candidate (the baseline predates the
    /// group): reported for visibility, never gated — a baseline cannot
    /// regress on a number it never recorded.
    New,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::WithinNoise => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Informational => "info-only",
            Verdict::New => "new (info-only)",
        }
    }
}

/// One row of a comparison.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Flattened metric name.
    pub name: String,
    /// Metric semantics.
    pub class: MetricClass,
    /// Baseline summary.
    pub base: Summary,
    /// Candidate summary.
    pub cand: Summary,
    /// Candidate median over baseline median.
    pub ratio: f64,
    /// `true` when the two 95 % CIs are disjoint (in either direction).
    pub resolvable: bool,
    /// Gate outcome.
    pub verdict: Verdict,
}

/// Full result of a document comparison.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-metric outcomes, in document order.
    pub deltas: Vec<Delta>,
    /// Geometric mean of candidate/baseline ratios over metrics where
    /// higher-is-better (wall times enter inverted), i.e. > 1.0 means the
    /// candidate is faster overall.
    pub geomean_speedup: f64,
    /// `true` when absolute metrics were gateable (configs matched).
    pub configs_match: bool,
}

impl CompareReport {
    /// Names of the metrics that gate (resolved regressions).
    pub fn regressions(&self) -> Vec<&str> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
            .map(|d| d.name.as_str())
            .collect()
    }

    /// `true` when nothing gates.
    pub fn pass(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Render the human-readable delta table plus verdict footer.
    pub fn to_text(&self) -> String {
        let mut t = Table::new(vec![
            "metric",
            "class",
            "baseline",
            "candidate",
            "delta",
            "95% CI",
            "verdict",
        ]);
        for d in &self.deltas {
            let is_new = d.verdict == Verdict::New;
            t.row(vec![
                d.name.clone(),
                d.class.label().into(),
                if is_new {
                    "-".into()
                } else {
                    fmt_value(d.base.median)
                },
                fmt_value(d.cand.median),
                if is_new {
                    "-".into()
                } else {
                    format!("{:+.1}%", (d.ratio - 1.0) * 100.0)
                },
                if is_new {
                    "-".into()
                } else if d.resolvable {
                    "disjoint".into()
                } else {
                    "overlap".into()
                },
                d.verdict.label().into(),
            ]);
        }
        let mut out = t.render();
        if !self.configs_match {
            out.push_str(
                "note: workload configs differ — absolute metrics (thru/wall) are\n\
                 info-only; ratio metrics gate cross-host.\n",
            );
        }
        out.push_str(&format!(
            "geomean speedup (candidate vs baseline, >1 is faster): {:.3}\n",
            self.geomean_speedup
        ));
        let regs = self.regressions();
        if regs.is_empty() {
            out.push_str("PASS: no statistically resolvable regression\n");
        } else {
            out.push_str(&format!(
                "FAIL: resolvable regression in {}\n",
                regs.join(", ")
            ));
        }
        out
    }
}

/// Adaptive value formatting for the delta table (rates in M/k, small
/// quantities plain).
fn fmt_value(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.3} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1} k", v / 1e3)
    } else {
        format!("{v:.4}")
    }
}

/// Noise-aware paired comparison of two decoded documents.
///
/// Metrics present in both documents are compared by name. A metric gates
/// as regressed only when (a) its class is gateable under the config match
/// state, (b) the two intervals are disjoint in the regressing direction,
/// and (c) the median effect exceeds the class minimum. Disjoint
/// improvements are labeled, everything else is within-noise.
///
/// Metrics only the *candidate* carries — a baseline written before a bench
/// group existed — are appended as [`Verdict::New`]: visible in the table,
/// excluded from the speedup geomean, and never gating. (Metrics only the
/// baseline carries are dropped: the candidate checkout no longer measures
/// them, so there is nothing to compare.)
pub fn compare(base: &BenchDoc, cand: &BenchDoc) -> CompareReport {
    let configs_match = base.config_matches(cand);
    let mut deltas = Vec::new();
    let mut speedup_ratios = Vec::new();
    for bm in &base.metrics {
        let Some(cm) = cand.metric(&bm.name) else {
            continue;
        };
        let (b, c) = (&bm.summary, &cm.summary);
        let ratio = c.median / b.median.max(1e-300);
        // Direction-normalized speedup: >1 always means "candidate better".
        speedup_ratios.push(if bm.class.lower_is_better() {
            1.0 / ratio.max(1e-300)
        } else {
            ratio
        });
        let cand_worse_resolved = if bm.class.lower_is_better() {
            c.ci_lo > b.ci_hi
        } else {
            c.ci_hi < b.ci_lo
        };
        let cand_better_resolved = if bm.class.lower_is_better() {
            c.ci_hi < b.ci_lo
        } else {
            c.ci_lo > b.ci_hi
        };
        let effect = if bm.class.lower_is_better() {
            ratio - 1.0 // slower = ratio above 1
        } else {
            1.0 - ratio // slower = ratio below 1
        };
        // Incommensurable deltas (absolute metrics across differing configs
        // or hosts) are reported in both directions but never interpreted:
        // a "2× faster engine" on a 10× smaller program means nothing.
        let gateable = configs_match || bm.class.portable();
        let verdict = if !gateable && (cand_worse_resolved || cand_better_resolved) {
            Verdict::Informational
        } else if cand_worse_resolved && effect >= bm.class.min_effect() {
            Verdict::Regressed
        } else if cand_better_resolved && -effect >= bm.class.min_effect() {
            Verdict::Improved
        } else {
            Verdict::WithinNoise
        };
        deltas.push(Delta {
            name: bm.name.clone(),
            class: bm.class,
            base: b.clone(),
            cand: c.clone(),
            ratio,
            resolvable: cand_worse_resolved || cand_better_resolved,
            verdict,
        });
    }
    for cm in &cand.metrics {
        if base.metric(&cm.name).is_none() {
            deltas.push(Delta {
                name: cm.name.clone(),
                class: cm.class,
                // No baseline exists; carry the candidate on both sides so
                // the row renders (the table prints `-` for the base and
                // delta columns of a `New` verdict).
                base: cm.summary.clone(),
                cand: cm.summary.clone(),
                ratio: 1.0,
                resolvable: false,
                verdict: Verdict::New,
            });
        }
    }
    CompareReport {
        deltas,
        geomean_speedup: geomean_ratios(&speedup_ratios),
        configs_match,
    }
}

/// Compare two bench documents from JSON text (either schema generation on
/// either side).
pub fn compare_texts(base: &str, cand: &str) -> Result<CompareReport, String> {
    let b = BenchDoc::parse(base).map_err(|e| format!("baseline: {e}"))?;
    let c = BenchDoc::parse(cand).map_err(|e| format!("candidate: {e}"))?;
    Ok(compare(&b, &c))
}

/// Write `contents` to `path`, refusing to clobber an existing file unless
/// `force` is set. `--bench-out` goes through this: silently overwriting the
/// previous results document loses the local baseline the user was about to
/// compare against.
pub fn write_guarded(path: &Path, contents: &str, force: bool) -> Result<(), String> {
    if path.exists() && !force {
        return Err(format!(
            "refusing to overwrite existing {} (pass --force to replace it)",
            path.display()
        ));
    }
    std::fs::write(path, contents).map_err(|e| format!("failed to write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Summary;
    use splash4_parmacs::json;

    /// A minimal, structurally complete v2 document where every rate metric
    /// scales with `scale`, every CI is ±`rci`·median, and 5 reps.
    fn synth_v2(scale: f64, rci: f64, quick: bool) -> String {
        synth_v2_with(scale, rci, quick, 30.0 / 17.0)
    }

    fn synth_v2_with(scale: f64, rci: f64, quick: bool, speedup: f64) -> String {
        synth_v2_serve(scale, rci, quick, speedup, 1.6)
    }

    fn synth_v2_serve(scale: f64, rci: f64, quick: bool, speedup: f64, retime: f64) -> String {
        synth_v2_reclaim(scale, rci, quick, speedup, retime, 8.0 / 5.0)
    }

    fn synth_v2_reclaim(
        scale: f64,
        rci: f64,
        quick: bool,
        speedup: f64,
        retime: f64,
        crossover: f64,
    ) -> String {
        synth_v2_combining(scale, rci, quick, speedup, retime, crossover, 1.3)
    }

    #[allow(clippy::too_many_arguments)]
    fn synth_v2_combining(
        scale: f64,
        rci: f64,
        quick: bool,
        speedup: f64,
        retime: f64,
        crossover: f64,
        combining: f64,
    ) -> String {
        let s = |median: f64| -> Json {
            Summary {
                median,
                ci_lo: median * (1.0 - rci),
                ci_hi: median * (1.0 + rci),
                reps: 5,
                cv: rci,
                samples: vec![median; 5],
            }
            .to_json()
        };
        let group = |m3: f64, m4: f64| {
            json!({
                "splash3": s(m3 * scale),
                "splash4": s(m4 * scale),
                "splash4x": s(m4 * 0.8 * scale),
                "ratio": s(m4 / m3),
            })
        };
        json!({
            "schema": "splash4-bench-v2",
            "config": json!({
                "quick": quick,
                "repetitions": 5u64,
                "threads": 4u64,
                "sync_ops": 1000u64,
                "barrier_crossings": 100u64,
                "sim_cores": 8u64,
                "sim_ops_per_core": 100u64,
                "serve_sim_cores": 1024u64,
                "serve_requests": 8u64,
            }),
            "metrics": json!({
                "reducer_ops_per_sec": group(5.0e6, 40.0e6),
                "counter_grabs_per_sec": group(4.5e6, 40.0e6),
                "barrier_crossings_per_sec": group(1.5e5, 1.1e5),
                "sim_events_per_sec": json!({
                    "engine": s(30.0e6 * scale),
                    "reference": s(17.0e6 * scale),
                    "speedup": s(speedup),
                }),
                "report_wall_secs": s(0.25 / scale),
                "serve": json!({
                    "requests_per_sec": s(120.0 * scale),
                    "events_per_sec_p1024": s(2.0e6 * scale),
                    "retime_speedup": s(retime),
                }),
                "reclaim": json!({
                    "index_pool_ops_per_sec": s(12.0e6 * scale),
                    "epoch_pool_ops_per_sec": s(8.0e6 * scale),
                    "hazard_pool_ops_per_sec": s(5.0e6 * scale),
                    "epoch_vs_index_ratio": s(8.0 / 12.0),
                    "epoch_vs_hazard_ratio": s(crossover),
                }),
                "combining": json!({
                    "reducer_vs_lockfree_ratio": s(0.8),
                    "counter_vs_lockfree_ratio": s(0.8),
                    "barrier_vs_lockfree_ratio": s(0.8),
                    "combining_vs_lockfree_ratio": s(combining),
                }),
            }),
        })
        .to_string_pretty()
    }

    fn synth_v1() -> String {
        json!({
            "schema": "splash4-bench-v1",
            "config": json!({"quick": false, "repetitions": 5u64, "threads": 4u64,
                "sync_ops": 1000u64, "barrier_crossings": 100u64,
                "sim_cores": 8u64, "sim_ops_per_core": 100u64}),
            "metrics": json!({
                "reducer_ops_per_sec": json!({"splash3": 5.0e6, "splash4": 40.0e6}),
                "counter_grabs_per_sec": json!({"splash3": 4.5e6, "splash4": 40.0e6}),
                "barrier_crossings_per_sec": json!({"splash3": 1.5e5, "splash4": 1.1e5}),
                "sim_events_per_sec": json!({"engine": 30.0e6, "reference": 17.0e6,
                    "speedup": 30.0/17.0}),
                "report_wall_secs": 0.25,
            }),
        })
        .to_string_pretty()
    }

    #[test]
    fn v2_documents_validate_and_decode() {
        let text = synth_v2(1.0, 0.03, false);
        let msg = validate(&text).expect("valid");
        assert!(msg.contains("v2"), "{msg}");
        let doc = BenchDoc::parse(&text).unwrap();
        assert_eq!(doc.version, 2);
        // 3 backend groups of (splash3, splash4, splash4x, ratio), then sim,
        // wall, serve, reclaim, combining.
        assert_eq!(doc.metrics.len(), 3 * 4 + 3 + 1 + 3 + 5 + 4);
        assert!(doc.metric("reducer_ops_per_sec/ratio").is_some());
        assert_eq!(
            doc.metric("counter_grabs_per_sec/splash4x").unwrap().class,
            MetricClass::Throughput
        );
        assert_eq!(
            doc.metric("combining/combining_vs_lockfree_ratio")
                .unwrap()
                .class,
            MetricClass::Ratio
        );
        assert_eq!(
            doc.metric("reclaim/epoch_vs_hazard_ratio").unwrap().class,
            MetricClass::Ratio
        );
        assert_eq!(
            doc.metric("reclaim/epoch_pool_ops_per_sec").unwrap().class,
            MetricClass::Throughput
        );
        assert_eq!(
            doc.metric("serve/retime_speedup").unwrap().class,
            MetricClass::Ratio
        );
        assert_eq!(
            doc.metric("serve/requests_per_sec").unwrap().class,
            MetricClass::Throughput
        );
    }

    #[test]
    fn pre_serve_v2_documents_still_validate_and_compare() {
        // Strip the serve group and its config keys: the shape a pre-serve
        // checkout wrote.
        let doc = Json::parse(&synth_v2(1.0, 0.03, false)).unwrap();
        let prune = |v: &Json, dead: &[&str]| {
            Json::Object(
                v.as_object()
                    .unwrap()
                    .iter()
                    .filter(|(k, _)| !dead.contains(&k.as_str()))
                    .cloned()
                    .collect(),
            )
        };
        let old = json!({
            "schema": "splash4-bench-v2",
            "config": prune(&doc["config"], &["serve_sim_cores", "serve_requests"]),
            "metrics": prune(&doc["metrics"], &["serve"]),
        })
        .to_string_pretty();
        let parsed = BenchDoc::parse(&old).expect("pre-serve documents must keep decoding");
        assert!(parsed.metric("serve/requests_per_sec").is_none());
        // Old vs old still shape-matches (Null == Null on the serve keys)…
        let r = compare_texts(&old, &old).expect("old self-compare");
        assert!(r.configs_match && r.pass());
        // …while old vs new correctly demotes absolute metrics.
        let r = compare_texts(&old, &synth_v2(1.0, 0.03, false)).expect("old vs new");
        assert!(!r.configs_match);
        assert!(r.pass(), "regressions: {:?}", r.regressions());
    }

    #[test]
    fn pre_reclaim_v2_documents_still_validate_and_compare() {
        // The shape a pre-reclaim checkout wrote: no `reclaim` group (its
        // churn knob reuses `sync_ops`, so the config is untouched).
        let doc = Json::parse(&synth_v2(1.0, 0.03, false)).unwrap();
        let metrics = Json::Object(
            doc["metrics"]
                .as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k != "reclaim")
                .cloned()
                .collect(),
        );
        let old = json!({
            "schema": "splash4-bench-v2",
            "config": doc["config"].clone(),
            "metrics": metrics,
        })
        .to_string_pretty();
        let parsed = BenchDoc::parse(&old).expect("pre-reclaim documents must keep decoding");
        assert!(parsed.metric("reclaim/epoch_vs_index_ratio").is_none());
        let r = compare_texts(&old, &old).expect("old self-compare");
        assert!(r.configs_match && r.pass());
        // Old baseline vs new candidate: the reclaim metrics are simply not
        // shared, and everything both sides carry still gates.
        let r = compare_texts(&old, &synth_v2(1.0, 0.03, false)).expect("old vs new");
        assert!(r.configs_match, "reclaim adds no shape keys");
        assert!(r.pass(), "regressions: {:?}", r.regressions());
    }

    #[test]
    fn pre_combining_v2_documents_still_validate_and_compare() {
        // The shape a pre-combining checkout wrote: no `splash4x` entries in
        // the backend groups and no `combining` group (the generation adds
        // no shape keys — same threads, same sync_ops).
        let doc = Json::parse(&synth_v2(1.0, 0.03, false)).unwrap();
        let strip_group = |v: &Json| {
            Json::Object(
                v.as_object()
                    .unwrap()
                    .iter()
                    .filter(|(k, _)| k != "splash4x")
                    .cloned()
                    .collect(),
            )
        };
        let metrics = Json::Object(
            doc["metrics"]
                .as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k != "combining")
                .map(|(k, v)| {
                    if BACKEND_METRICS.contains(&k.as_str()) {
                        (k.clone(), strip_group(v))
                    } else {
                        (k.clone(), v.clone())
                    }
                })
                .collect(),
        );
        let old = json!({
            "schema": "splash4-bench-v2",
            "config": doc["config"].clone(),
            "metrics": metrics,
        })
        .to_string_pretty();
        let parsed = BenchDoc::parse(&old).expect("pre-combining documents must keep decoding");
        assert!(parsed.metric("counter_grabs_per_sec/splash4x").is_none());
        assert!(parsed
            .metric("combining/combining_vs_lockfree_ratio")
            .is_none());
        let r = compare_texts(&old, &old).expect("old self-compare");
        assert!(r.configs_match && r.pass());
        // Old baseline vs new candidate: combining metrics simply aren't
        // shared; everything both sides carry still gates.
        let r = compare_texts(&old, &synth_v2(1.0, 0.03, false)).expect("old vs new");
        assert!(r.configs_match, "combining adds no shape keys");
        assert!(r.pass(), "regressions: {:?}", r.regressions());
    }

    #[test]
    fn combining_ratio_collapse_gates_even_cross_config() {
        let base = synth_v2(1.0, 0.02, false);
        // The paired splash4x/splash4 drain ratio is host-normalized: a
        // combining core that falls from 1.3× to 1.0× of the lock-free
        // counter must gate even when the bench sizes differ.
        let cand = synth_v2_combining(1.0, 0.02, true, 30.0 / 17.0, 1.6, 8.0 / 5.0, 1.0);
        let r = compare_texts(&base, &cand).expect("compares");
        assert!(r
            .regressions()
            .contains(&"combining/combining_vs_lockfree_ratio"));
    }

    #[test]
    fn epoch_hazard_crossover_collapse_gates_even_cross_config() {
        let base = synth_v2(1.0, 0.02, false);
        // The EBR/HP crossover is host-normalized: an epoch back-end that
        // drops to hazard-pointer speed must gate even across bench sizes.
        let cand = synth_v2_reclaim(1.0, 0.02, true, 30.0 / 17.0, 1.6, 1.0);
        let r = compare_texts(&base, &cand).expect("compares");
        assert!(r.regressions().contains(&"reclaim/epoch_vs_hazard_ratio"));
    }

    #[test]
    fn serve_retime_collapse_gates_even_cross_config() {
        let base = synth_v2(1.0, 0.02, false);
        // Different shape (quick), but the barrier-release retime ratio is
        // host-normalized: collapsing from 1.6× to 1.0× must gate.
        let cand = synth_v2_serve(1.0, 0.02, true, 30.0 / 17.0, 1.0);
        let r = compare_texts(&base, &cand).expect("compares");
        assert!(r.regressions().contains(&"serve/retime_speedup"));
    }

    /// `doc` with an `atomics` group of two cells spliced into `metrics`.
    fn with_atomics(text: &str) -> String {
        let doc = Json::parse(text).unwrap();
        let s = |median: f64| -> Json {
            Summary {
                median,
                ci_lo: median * 0.98,
                ci_hi: median * 1.02,
                reps: 5,
                cv: 0.02,
                samples: vec![median; 5],
            }
            .to_json()
        };
        let mut metrics = doc["metrics"].as_object().unwrap().to_vec();
        metrics.push((
            "atomics".into(),
            json!({"faa_c1_ns": s(14.0), "faa_c4_ns": s(92.0)}),
        ));
        json!({
            "schema": "splash4-bench-v2",
            "config": doc["config"].clone(),
            "metrics": Json::Object(metrics),
        })
        .to_string_pretty()
    }

    #[test]
    fn candidate_only_groups_report_as_new_and_never_gate() {
        // Baseline predates the atomics matrix; candidate carries it. The
        // extra group must not error, must not gate, and must show up as
        // `new` rows in the rendered table.
        let base = synth_v2(1.0, 0.02, false);
        let cand = with_atomics(&synth_v2(1.0, 0.02, false));
        let r = compare_texts(&base, &cand).expect("old baseline vs new candidate");
        assert!(r.configs_match, "atomics adds no shape keys");
        assert!(r.pass(), "regressions: {:?}", r.regressions());
        let news: Vec<&str> = r
            .deltas
            .iter()
            .filter(|d| d.verdict == Verdict::New)
            .map(|d| d.name.as_str())
            .collect();
        assert_eq!(news, ["atomics/faa_c1_ns", "atomics/faa_c4_ns"]);
        let text = r.to_text();
        assert!(text.contains("new (info-only)"), "{text}");
        // New rows do not perturb the geomean over shared metrics.
        assert!((r.geomean_speedup - 1.0).abs() < 1e-9);
        // Both sides carrying the group compares it normally again.
        let r = compare_texts(&cand, &cand).expect("self compare");
        assert!(r.deltas.iter().all(|d| d.verdict == Verdict::WithinNoise));
    }

    #[test]
    fn atomics_only_subset_documents_validate_and_decode() {
        // The `--bench atomics` shape: config + the atomics group, no core
        // groups at all. It must validate (it is the calibration input CI
        // uploads) while a document with *some* core groups but not all of
        // them must still be rejected.
        let full = Json::parse(&with_atomics(&synth_v2(1.0, 0.02, false))).unwrap();
        let subset = json!({
            "schema": "splash4-bench-v2",
            "config": full["config"].clone(),
            "metrics": json!({"atomics": full["metrics"]["atomics"].clone()}),
        })
        .to_string_pretty();
        let doc = BenchDoc::parse(&subset).expect("atomics-only subset decodes");
        assert_eq!(doc.metrics.len(), 2);
        assert_eq!(
            doc.metric("atomics/faa_c1_ns").unwrap().class,
            MetricClass::Wall
        );
        // Empty metrics: rejected.
        let empty = json!({
            "schema": "splash4-bench-v2",
            "config": full["config"].clone(),
            "metrics": json!({}),
        })
        .to_string_pretty();
        assert!(BenchDoc::parse(&empty)
            .unwrap_err()
            .contains("no metric groups"));
        // A malformed atomics group (not an object) is rejected.
        let bad = json!({
            "schema": "splash4-bench-v2",
            "config": full["config"].clone(),
            "metrics": json!({"atomics": 3.0}),
        })
        .to_string_pretty();
        assert!(BenchDoc::parse(&bad).unwrap_err().contains("atomics"));
    }

    #[test]
    fn v1_documents_decode_through_the_shim() {
        let doc = BenchDoc::parse(&synth_v1()).expect("legacy parses");
        assert_eq!(doc.version, 1);
        let m = doc.metric("reducer_ops_per_sec/splash4").unwrap();
        assert_eq!(m.summary.reps, 1);
        assert!(m.summary.ci_lo < m.summary.median && m.summary.median < m.summary.ci_hi);
        // Derived ratio exists even though v1 never recorded one.
        let r = doc.metric("reducer_ops_per_sec/ratio").unwrap();
        assert!((r.summary.median - 8.0).abs() < 1e-9);
        assert_eq!(r.class, MetricClass::Ratio);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(validate("{}").is_err());
        assert!(validate(&synth_v2(1.0, 0.03, false).replace("splash4-bench-v2", "v9")).is_err());
        // Drop a required group.
        let text = synth_v2(1.0, 0.03, false).replace("report_wall_secs", "renamed");
        assert!(validate(&text).is_err());
        // CI that does not bracket the median.
        let mut s = Summary::point(1.0);
        s.ci_lo = 2.0;
        assert!(s.check().is_err());
    }

    #[test]
    fn self_comparison_passes() {
        let text = synth_v2(1.0, 0.03, false);
        let r = compare_texts(&text, &text).expect("compares");
        assert!(r.pass());
        assert!((r.geomean_speedup - 1.0).abs() < 1e-9);
        assert!(r.deltas.iter().all(|d| d.verdict == Verdict::WithinNoise));
        assert!(r.to_text().contains("PASS"));
    }

    #[test]
    fn resolvable_slowdown_gates() {
        let base = synth_v2(1.0, 0.03, false);
        let slow = synth_v2(0.5, 0.03, false); // all rates halved, wall doubled
        let r = compare_texts(&base, &slow).expect("compares");
        assert!(!r.pass());
        let regs = r.regressions();
        assert!(regs.contains(&"reducer_ops_per_sec/splash4"));
        assert!(regs.contains(&"report_wall_secs"));
        // The ratio metrics did not move (both sides scaled), so they pass.
        assert!(!regs.iter().any(|n| n.ends_with("/ratio")));
        // 17 absolute metrics at 0.5×, 11 ratio metrics at 1.0×: 0.5^(17/28).
        assert!((r.geomean_speedup - 0.5f64.powf(17.0 / 28.0)).abs() < 1e-9);
        assert!(r.to_text().contains("FAIL"));
    }

    #[test]
    fn within_noise_wiggle_does_not_gate() {
        let base = synth_v2(1.0, 0.06, false);
        let wiggle = synth_v2(1.04, 0.06, false); // 4% shift, inside ±6% CIs
        let r = compare_texts(&base, &wiggle).expect("compares");
        assert!(r.pass(), "regressions: {:?}", r.regressions());
    }

    #[test]
    fn config_mismatch_demotes_absolute_metrics() {
        let base = synth_v2(1.0, 0.02, false);
        let cand = synth_v2(0.4, 0.02, true); // much slower host, quick config
        let r = compare_texts(&base, &cand).expect("compares");
        assert!(!r.configs_match);
        // Absolute collapses are info-only; ratios unchanged → pass.
        assert!(r.pass(), "regressions: {:?}", r.regressions());
        assert!(r.deltas.iter().any(|d| d.verdict == Verdict::Informational));
        assert!(r.to_text().contains("info-only"));
    }

    #[test]
    fn ratio_regression_gates_even_cross_config() {
        let base = synth_v2(1.0, 0.02, false);
        // Candidate from a different config (quick) — but the engine speedup
        // collapsed from 1.76× to 1.05×, which is host-normalized and gates.
        let cand = synth_v2_with(1.0, 0.02, true, 1.05);
        let r = compare_texts(&base, &cand).expect("compares");
        assert!(r.regressions().contains(&"sim_events_per_sec/speedup"));
    }

    #[test]
    fn sub_threshold_resolved_delta_reports_but_does_not_gate() {
        // 5% drop with razor-thin CIs: resolved, but under the 10% floor.
        let base = synth_v2(1.0, 0.001, false);
        let cand = synth_v2(0.95, 0.001, false);
        let r = compare_texts(&base, &cand).expect("compares");
        assert!(r.pass(), "regressions: {:?}", r.regressions());
        assert!(r.deltas.iter().any(|d| d.resolvable));
    }

    #[test]
    fn v1_vs_v2_mixed_comparison_works() {
        let r = compare_texts(&synth_v1(), &synth_v2(1.0, 0.03, false)).expect("mixed");
        assert!(r.pass(), "regressions: {:?}", r.regressions());
        let r = compare_texts(&synth_v1(), &synth_v1()).expect("v1 self");
        assert!(r.pass());
        assert!((r.geomean_speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn write_guard_refuses_then_forces() {
        let dir = std::env::temp_dir().join(format!("splash4-guard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        write_guarded(&path, "first", false).expect("fresh write ok");
        let err = write_guarded(&path, "second", false).expect_err("must refuse");
        assert!(err.contains("--force"), "{err}");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_guarded(&path, "second", true).expect("forced write ok");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
