//! Content-hashed result cache with in-flight request coalescing.
//!
//! [`ResultCache`] generalizes the calibrated-model cache to *whole results*:
//! any value keyed by a content hash of the request that produced it. It is
//! the dedup layer of the `splash4-serve` experiment service — two clients
//! submitting byte-identical configs share one computation — but it is
//! deliberately value-generic so [`crate::experiments::ModelCache`] rebases
//! on it too.
//!
//! Three properties the tests pin down:
//!
//! - **exactly-once**: concurrent requests for the same key coalesce on a
//!   condvar while the first caller computes; the value is computed once and
//!   every waiter gets the clone (and counts as a *hit*).
//! - **bounded**: at most `capacity` ready values are retained; inserting
//!   past that evicts the least-recently-used entry (in-flight computations
//!   are never evicted and do not count against the bound).
//! - **observable**: hits and misses are recorded into the shared
//!   [`SyncCounters`] (`cache_hits` / `cache_misses` in the profile), so a
//!   service can *prove* a duplicate was served from cache.
//!
//! Errors are not cached: a failed computation removes the in-flight marker
//! and wakes the waiters, one of which retries the computation itself.

use splash4_parmacs::{Counter, SyncCounters};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// FNV-1a over `bytes`: the content hash used for cache keys.
///
/// Stable across processes and platforms (unlike `DefaultHasher`), so keys
/// derived from a request's canonical form are reproducible in logs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

enum Slot<V> {
    /// Some caller is computing this key; waiters park on the condvar.
    InFlight,
    /// Computed value plus the logical time of its last use (for eviction).
    Ready { value: V, last_used: u64 },
}

struct CacheInner<V> {
    map: HashMap<u64, Slot<V>>,
    /// Logical clock advanced on every touch; drives LRU eviction.
    tick: u64,
}

struct CacheShared<V> {
    inner: Mutex<CacheInner<V>>,
    cond: Condvar,
    capacity: usize,
    stats: Arc<SyncCounters>,
}

/// Shareable content-hashed result cache (clones share the same storage).
pub struct ResultCache<V> {
    shared: Arc<CacheShared<V>>,
}

impl<V> Clone for ResultCache<V> {
    fn clone(&self) -> ResultCache<V> {
        ResultCache {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<V> std::fmt::Debug for ResultCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("len", &self.len())
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

impl<V: Clone> ResultCache<V> {
    /// A cache retaining at most `capacity` ready values (minimum 1),
    /// recording hit/miss counts into `stats`.
    pub fn new(capacity: usize, stats: Arc<SyncCounters>) -> ResultCache<V> {
        ResultCache {
            shared: Arc::new(CacheShared {
                inner: Mutex::new(CacheInner {
                    map: HashMap::new(),
                    tick: 0,
                }),
                cond: Condvar::new(),
                capacity: capacity.max(1),
                stats,
            }),
        }
    }

    /// The value for `key`, computing it with `compute` on miss. Returns
    /// `(value, hit)`; `hit` is `true` when the value came from the cache —
    /// including when this call coalesced onto another caller's in-flight
    /// computation. A failed `compute` caches nothing and propagates the
    /// error (waiters retry).
    pub fn get_or_try_compute<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        let s = &self.shared;
        let mut inner = s.inner.lock().expect("result cache poisoned");
        loop {
            match inner.map.get(&key) {
                Some(Slot::Ready { value, .. }) => {
                    let v = value.clone();
                    inner.tick += 1;
                    let tick = inner.tick;
                    if let Some(Slot::Ready { last_used, .. }) = inner.map.get_mut(&key) {
                        *last_used = tick;
                    }
                    drop(inner);
                    s.stats.add(Counter::CacheHits, 1);
                    return Ok((v, true));
                }
                Some(Slot::InFlight) => {
                    // Coalesce: park until the computing caller resolves the
                    // slot. On wake it is either Ready (hit) or gone (the
                    // computation failed — loop around and take over).
                    inner = s.cond.wait(inner).expect("result cache poisoned");
                }
                None => break,
            }
        }
        inner.map.insert(key, Slot::InFlight);
        drop(inner);
        s.stats.add(Counter::CacheMisses, 1);

        let computed = compute();
        let mut inner = s.inner.lock().expect("result cache poisoned");
        match computed {
            Ok(v) => {
                inner.tick += 1;
                let tick = inner.tick;
                inner.map.insert(
                    key,
                    Slot::Ready {
                        value: v.clone(),
                        last_used: tick,
                    },
                );
                let evicted = Self::evict_over_capacity(&mut inner, s.capacity);
                if evicted > 0 {
                    s.stats.add(Counter::CacheEvictions, evicted);
                }
                drop(inner);
                s.cond.notify_all();
                Ok((v, false))
            }
            Err(e) => {
                inner.map.remove(&key);
                drop(inner);
                s.cond.notify_all();
                Err(e)
            }
        }
    }

    /// Infallible convenience wrapper around [`Self::get_or_try_compute`].
    pub fn get_or_compute(&self, key: u64, compute: impl FnOnce() -> V) -> (V, bool) {
        match self.get_or_try_compute::<std::convert::Infallible>(key, || Ok(compute())) {
            Ok(out) => out,
            Err(e) => match e {},
        }
    }

    /// Drop least-recently-used ready entries until the bound holds; returns
    /// how many entries were dropped.
    fn evict_over_capacity(inner: &mut CacheInner<V>, capacity: usize) -> u64 {
        let mut evicted = 0;
        loop {
            let ready = inner
                .map
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            if ready <= capacity {
                return evicted;
            }
            let oldest = inner
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*k, *last_used)),
                    Slot::InFlight => None,
                })
                .min_by_key(|&(_, t)| t)
                .map(|(k, _)| k);
            match oldest {
                Some(k) => {
                    inner.map.remove(&k);
                    evicted += 1;
                }
                None => return evicted,
            }
        }
    }
}

impl<V> ResultCache<V> {
    /// `true` if `key` currently has a ready value (does not touch LRU
    /// order or counters).
    pub fn contains(&self, key: u64) -> bool {
        let inner = self.shared.inner.lock().expect("result cache poisoned");
        matches!(inner.map.get(&key), Some(Slot::Ready { .. }))
    }

    /// Number of ready values currently cached.
    pub fn len(&self) -> usize {
        let inner = self.shared.inner.lock().expect("result cache poisoned");
        inner
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// `true` if no values are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retention bound this cache was built with.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Cache hits recorded so far (folded across threads).
    pub fn hits(&self) -> u64 {
        self.shared.stats.snapshot().cache_hits
    }

    /// Cache misses (computations started) recorded so far.
    pub fn misses(&self) -> u64 {
        self.shared.stats.snapshot().cache_misses
    }

    /// Ready values evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.shared.stats.snapshot().cache_evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn cache(capacity: usize) -> ResultCache<String> {
        ResultCache::new(capacity, Arc::new(SyncCounters::new()))
    }

    #[test]
    fn fnv1a_is_stable_and_content_sensitive() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"experiment/F2"), fnv1a(b"experiment/F3"));
    }

    #[test]
    fn identical_keys_hit_and_counters_prove_it() {
        let c = cache(8);
        let runs = AtomicUsize::new(0);
        let compute = || {
            runs.fetch_add(1, Ordering::SeqCst);
            "value".to_string()
        };
        let (v1, hit1) = c.get_or_compute(42, compute);
        let (v2, hit2) = c.get_or_compute(42, compute);
        assert_eq!((v1.as_str(), hit1), ("value", false));
        assert_eq!((v2.as_str(), hit2), ("value", true));
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!((c.misses(), c.hits()), (1, 1));
    }

    #[test]
    fn different_keys_miss() {
        let c = cache(8);
        let (_, h1) = c.get_or_compute(1, || "a".into());
        let (_, h2) = c.get_or_compute(2, || "b".into());
        assert!(!h1 && !h2);
        assert_eq!((c.misses(), c.hits()), (2, 0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let c = cache(2);
        c.get_or_compute(1, || "one".into());
        c.get_or_compute(2, || "two".into());
        // Touch key 1 so key 2 is the LRU entry.
        assert!(c.get_or_compute(1, || unreachable!()).1);
        c.get_or_compute(3, || "three".into());
        assert_eq!(c.len(), 2);
        assert!(c.contains(1) && c.contains(3));
        assert!(!c.contains(2), "LRU entry must be evicted");
        assert_eq!(c.evictions(), 1, "the eviction must be counted");
        // Re-requesting the evicted key recomputes (and evicts again).
        let (_, hit) = c.get_or_compute(2, || "two again".into());
        assert!(!hit);
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn concurrent_duplicates_compute_exactly_once() {
        const WAITERS: usize = 8;
        let c = ResultCache::new(8, Arc::new(SyncCounters::new()));
        let runs = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..WAITERS)
            .map(|_| {
                let c = c.clone();
                let runs = Arc::clone(&runs);
                thread::spawn(move || {
                    c.get_or_compute(7, move || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        // Hold the in-flight slot long enough that the other
                        // threads observe it and coalesce.
                        thread::sleep(std::time::Duration::from_millis(20));
                        "shared".to_string()
                    })
                })
            })
            .collect();
        let outcomes: Vec<(String, bool)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "must compute exactly once");
        assert!(outcomes.iter().all(|(v, _)| v == "shared"));
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), WAITERS as u64 - 1);
        assert_eq!(
            outcomes.iter().filter(|(_, hit)| !hit).count(),
            1,
            "exactly one caller reports a miss"
        );
    }

    #[test]
    fn errors_are_not_cached_and_waiters_retry() {
        let c = cache(8);
        let attempts = AtomicUsize::new(0);
        let r: Result<(String, bool), String> = c.get_or_try_compute(9, || {
            attempts.fetch_add(1, Ordering::SeqCst);
            Err("boom".to_string())
        });
        assert_eq!(r.unwrap_err(), "boom");
        assert!(!c.contains(9), "errors must not be cached");
        let (v, hit) = c.get_or_compute(9, || {
            attempts.fetch_add(1, Ordering::SeqCst);
            "recovered".to_string()
        });
        assert_eq!((v.as_str(), hit), ("recovered", false));
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn in_flight_entries_survive_eviction_pressure() {
        let c = ResultCache::new(1, Arc::new(SyncCounters::new()));
        let c2 = c.clone();
        let slow = thread::spawn(move || {
            c2.get_or_compute(100, || {
                thread::sleep(std::time::Duration::from_millis(30));
                "slow".to_string()
            })
        });
        // Let the slow computation claim its in-flight slot, then churn the
        // cache past capacity while it runs.
        thread::sleep(std::time::Duration::from_millis(5));
        for k in 0..5 {
            c.get_or_compute(k, || format!("v{k}"));
        }
        let (v, hit) = slow.join().unwrap();
        assert_eq!((v.as_str(), hit), ("slow", false));
        assert!(c.contains(100), "freshly computed value must be retained");
    }
}
