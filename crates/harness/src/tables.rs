//! Plain-text table and CSV rendering for reports.

use splash4_parmacs::Json;
use std::fmt::Write as _;

/// A rendered experiment artifact: human-readable text plus machine-readable
/// JSON.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `F2-sim-epyc`).
    pub id: String,
    /// One-line title.
    pub title: String,
    /// The rendered table/figure text.
    pub text: String,
    /// Machine-readable payload.
    pub json: Json,
    /// CSV rendering of the main table.
    pub csv: String,
}

impl Report {
    /// Render id, title and body for terminal output.
    pub fn to_terminal(&self) -> String {
        format!("== {} — {} ==\n{}\n", self.id, self.title, self.text)
    }
}

/// Column-aligned text table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for c in 0..ncols {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:width$}", cells[c], width = widths[c]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Geometric mean of positive values (ignores non-positive entries).
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .filter(|&&v| v > 0.0)
        .map(|v| v.ln())
        .collect();
    if logs.is_empty() {
        return f64::NAN;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Format a ratio as a percentage change, paper-style: 0.48 → "-52.0%".
pub fn pct_change(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "22"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].split_whitespace().count(), 2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn pct_change_formats() {
        assert_eq!(pct_change(0.48), "-52.0%");
        assert_eq!(pct_change(1.10), "+10.0%");
    }
}
